package core

import (
	"fmt"
	"strings"
	"testing"

	"jmtam/internal/word"
)

// midPostProgram exercises the PostEnd-followed-by-Case pattern: the
// inlet's terminal post is NOT its last emitted instruction, so the
// fall-through optimization must keep the branch rather than assuming
// adjacency. The inlet posts tBig for values >= 10 and tSmall
// otherwise; both store a tagged result.
func midPostProgram() *Program {
	cb := &Codeblock{Name: "mid", NumSlots: 1}
	tSmall := cb.AddThread("small", -1, func(b *Body) {
		b.LDSlot(0, 0)
		b.AddI(0, 0, 100)
		b.StoreResult(0, 0)
		b.Stop()
	})
	tBig := cb.AddThread("big", -1, func(b *Body) {
		b.LDSlot(0, 0)
		b.AddI(0, 0, 1000)
		b.StoreResult(0, 0)
		b.Stop()
	})
	start := cb.AddInlet("start", func(b *Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.MovI(1, 10)
		b.BLT(0, 1, "mid.l.takesmall")
		b.PostEnd(tBig)
		b.Case("mid.l.takesmall")
		b.PostEnd(tSmall)
	})
	return &Program{
		Name:   "midpost",
		Blocks: []*Codeblock{cb},
		Setup: func(h *Host) error {
			f := h.AllocFrame(cb)
			return h.Start(start, f, word.Int(7))
		},
		Verify: func(h *Host) error {
			if got := h.Result(0).AsInt(); got != 107 {
				return fmt.Errorf("result = %d, want 107", got)
			}
			return nil
		},
	}
}

func TestPostEndMidInlet(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl.String(), func(t *testing.T) {
			runProgram(t, impl, midPostProgram())
		})
	}
}

// doublePostProgram exercises Post followed by PostEnd within one inlet
// under MD: the first post pushes the LCV, so the not-ready PostEnd path
// and the fall-through thread's Stop must both drain the LCV instead of
// suspending.
func doublePostProgram() *Program {
	cb := &Codeblock{Name: "dp", NumCounts: 1, InitCounts: []int64{2}, NumSlots: 2}
	t1 := cb.AddThread("one", -1, func(b *Body) {
		b.LDSlot(0, 0)
		b.AddI(0, 0, 1)
		b.STSlot(0, 0)
		b.Stop()
	})
	t2 := cb.AddThread("two", -1, func(b *Body) {
		b.LDSlot(0, 0)
		b.MulI(0, 0, 3)
		b.StoreResult(0, 0)
		b.Stop()
	})
	start := cb.AddInlet("start", func(b *Body) {
		b.Arg(0, 0)
		b.STSlot(0, 0)
		b.Post(t1)    // pushes the CV
		b.PostEnd(t2) // under MD must pop, not suspend
	})
	return &Program{
		Name:   "doublepost",
		Blocks: []*Codeblock{cb},
		Setup: func(h *Host) error {
			f := h.AllocFrame(cb)
			return h.Start(start, f, word.Int(5))
		},
		Verify: func(h *Host) error {
			// t2 runs first (direct transfer), then t1 pops. Under AM
			// the post order drains LIFO from the RCV: t2 pushed last
			// runs first as well. Either way the result reflects t2
			// seeing the original value... t2 multiplies whatever is
			// in slot 0 when it runs; ordering differs by backend, so
			// accept both serializations.
			got := h.Result(0).AsInt()
			if got != 15 && got != 18 {
				return fmt.Errorf("result = %d, want 15 or 18", got)
			}
			return nil
		},
	}
}

func TestPostThenPostEnd(t *testing.T) {
	for _, impl := range allImpls {
		t.Run(impl.String(), func(t *testing.T) {
			runProgram(t, impl, doublePostProgram())
		})
	}
}

func TestEnabledVariantGuardsCVAccess(t *testing.T) {
	// The enabled-AM backend wraps fork sequences in DI/EI; the
	// unenabled backend holds interrupts off for the whole thread and
	// needs no per-fork guards beyond the thread-top window.
	enabled, err := Build(ImplAMEnabled, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	unenabled, err := Build(ImplAM, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	countOf := func(dump, instr string) int { return strings.Count(dump, instr) }
	en := enabled.RT.User.Dump()
	un := unenabled.RT.User.Dump()
	// Unenabled: exactly one EI and one DI per thread (the top window).
	// Enabled: EI at thread top plus EI re-enables after guarded CV ops,
	// so strictly more EIs than threads.
	if countOf(en, "  ei") <= countOf(un, "  ei")-1 {
		t.Errorf("enabled variant has %d EIs vs unenabled %d", countOf(en, "  ei"), countOf(un, "  ei"))
	}
	if !strings.Contains(en, "di") {
		t.Error("enabled variant has no DI guards at all")
	}
}

func TestMDFallthroughAdjacency(t *testing.T) {
	// Under MD the DirectOnly thread is placed immediately after its
	// posting inlet; the disassembly must show the thread label with no
	// branch between the inlet's last instruction and the thread.
	sim, err := Build(ImplMD, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sim.RT.User.Dump()
	// The start inlet posts sum.init; a fall-through means no "br"
	// immediately before the "sum.init:" label.
	idx := strings.Index(d, "sum.init:")
	if idx < 0 {
		t.Fatal("missing thread label in dump")
	}
	before := d[:idx]
	lines := strings.Split(strings.TrimRight(before, "\n"), "\n")
	last := lines[len(lines)-1]
	if strings.Contains(last, "br ") {
		t.Errorf("MD inlet ends with a branch before its fall-through thread: %q", last)
	}
	// The AM backend must NOT fall through (inlet suspends).
	am, err := Build(ImplAM, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d = am.RT.User.Dump()
	idx = strings.Index(d, "sum.init:")
	lines = strings.Split(strings.TrimRight(d[:idx], "\n"), "\n")
	if last := lines[len(lines)-1]; !strings.Contains(last, "suspend") {
		t.Errorf("AM inlet does not end with suspend before the thread: %q", last)
	}
}

func TestHostResultAndPeekPoke(t *testing.T) {
	sim, err := Build(ImplMD, sumLoopProgram(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := sim.Host
	addr := h.AllocData(2)
	h.PokeInt(addr, 41)
	h.PokeFloat(addr+4, 2.5)
	if h.Peek(addr).AsInt() != 41 || h.Peek(addr+4).AsFloat() != 2.5 {
		t.Error("Poke/Peek round trip failed")
	}
	ist := h.AllocIStruct(3)
	for i := uint32(0); i < 3; i++ {
		if h.Peek(ist + 4*i).IsPresent() {
			t.Error("AllocIStruct cell not empty")
		}
	}
}
