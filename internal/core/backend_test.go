package core

import (
	"strings"
	"testing"
)

func TestParseImplAcceptsWireDisplayAndAliases(t *testing.T) {
	cases := []struct {
		in   string
		want Impl
	}{
		{"md", ImplMD},
		{"MD", ImplMD},
		{"", ImplMD}, // historical default for an absent field
		{"am", ImplAM},
		{"AM", ImplAM},
		{"am-enabled", ImplAMEnabled},
		{"AM-enabled", ImplAMEnabled},
		{"oam", ImplOAM},
		{"OAM", ImplOAM},
		{"offload", ImplOffload},
		{"aa", ImplAA},
	}
	for _, c := range cases {
		got, err := ParseImpl(c.in)
		if err != nil {
			t.Errorf("ParseImpl(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseImpl(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Display names are persisted in journals and store descriptors;
// parsing must round-trip them for every registered backend.
func TestParseImplRoundTripsEveryBackend(t *testing.T) {
	for _, b := range Backends() {
		for _, s := range []string{b.Name, b.Display, b.Impl.String()} {
			got, err := ParseImpl(s)
			if err != nil {
				t.Errorf("ParseImpl(%q): %v", s, err)
				continue
			}
			if got != b.Impl {
				t.Errorf("ParseImpl(%q) = %v, want %v", s, got, b.Impl)
			}
		}
		if b.Impl.Name() != b.Name {
			t.Errorf("%v.Name() = %q, want %q", b.Impl, b.Impl.Name(), b.Name)
		}
		if !b.Impl.Registered() {
			t.Errorf("%v not registered", b.Impl)
		}
	}
}

func TestParseImplUnknownListsBackends(t *testing.T) {
	_, err := ParseImpl("vax")
	if err == nil {
		t.Fatal("ParseImpl(vax) succeeded")
	}
	for _, name := range BackendNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list known backend %q", err, name)
		}
	}
}

func TestParseImpls(t *testing.T) {
	impls, err := ParseImpls("md, am,offload,aa")
	if err != nil {
		t.Fatal(err)
	}
	want := []Impl{ImplMD, ImplAM, ImplOffload, ImplAA}
	if len(impls) != len(want) {
		t.Fatalf("got %v, want %v", impls, want)
	}
	for i := range want {
		if impls[i] != want[i] {
			t.Fatalf("got %v, want %v", impls, want)
		}
	}
	if _, err := ParseImpls("md,md"); err == nil {
		t.Error("duplicate impl accepted")
	}
	if _, err := ParseImpls("md,AM,am"); err == nil {
		t.Error("duplicate impl via alias accepted")
	}
	if _, err := ParseImpls(" , "); err == nil || !strings.Contains(err.Error(), "known backends") {
		t.Errorf("empty list error %v does not list known backends", err)
	}
	if _, err := ParseImpls("md,pdp11"); err == nil {
		t.Error("unknown impl accepted in list")
	}
}

func TestSortImplsUsesRegistryOrder(t *testing.T) {
	impls := []Impl{ImplAA, ImplOAM, ImplMD, ImplOffload, ImplAM}
	SortImpls(impls)
	want := []Impl{ImplMD, ImplAM, ImplOAM, ImplOffload, ImplAA}
	for i := range want {
		if impls[i] != want[i] {
			t.Fatalf("got %v, want %v", impls, want)
		}
	}
}

// The new backends are the AM capability set plus exactly one locality
// flag each: codegen must treat them as AM (byte-identical programs),
// with the difference confined to where handling executes.
func TestOffloadAndAAShareAMCodegenCaps(t *testing.T) {
	am := ImplAM.Caps()
	off := ImplOffload.Caps()
	aa := ImplAA.Caps()
	if !off.NICInlets || off.DirectAccess {
		t.Errorf("offload caps flags wrong: %+v", off)
	}
	if !aa.DirectAccess || aa.NICInlets {
		t.Errorf("aa caps flags wrong: %+v", aa)
	}
	off.NICInlets = false
	aa.DirectAccess = false
	if off != am {
		t.Errorf("offload caps diverge from AM beyond NICInlets: %+v vs %+v", off, am)
	}
	if aa != am {
		t.Errorf("aa caps diverge from AM beyond DirectAccess: %+v vs %+v", aa, am)
	}
}
