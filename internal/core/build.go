package core

import (
	"context"
	"fmt"

	"jmtam/internal/isa"
	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/netsim"
	"jmtam/internal/obs"
	"jmtam/internal/stats"
	"jmtam/internal/trace"
	"jmtam/internal/word"
)

// Options tunes simulation construction.
type Options struct {
	// QueueCapWords bounds the hardware message queues (0 = default).
	QueueCapWords int
	// MaxInstructions aborts runaway simulations (0 = no limit).
	MaxInstructions uint64
	// NoQueueWriteTrace disables charging hardware message buffering
	// as data writes (see the paper's §1.1.2 footnote; enabled by
	// default because buffering consumes memory bandwidth either way).
	NoQueueWriteTrace bool
	// NoMDOptimize disables the §2.3 static optimizations in the MD
	// backend (keeping argument values in registers across a direct
	// post, placing threads immediately after their posting inlet, and
	// converting pops of a statically-empty LCV into suspends). Used
	// by the optimization ablation; the paper presents these as the
	// conventional optimizations the direct control transfer opens up.
	NoMDOptimize bool
	// Obs, when non-nil, attaches the observability sink: the machine,
	// scheduler statistics and (at the end of the run) aggregate
	// counters feed its metrics registry, and — if the sink carries an
	// event buffer — the run emits a Perfetto-loadable timeline.
	// Instrumentation is passive: results are identical with or without
	// it.
	Obs *obs.Sink
	// Nodes runs the program on an N-node mesh (0 or 1 = uniprocessor).
	// Must be a power of two. Multi-node compilation makes the system
	// handlers and message macros mesh-aware: allocation requests are
	// placed by the Placement policy, I-structure requests route to the
	// addressed cell's home node, and replies route to the continuation
	// frame's owner. Affects code generation, so it is fixed at Compile
	// time; run via Compiled.NewCluster (or the jmtam façade).
	Nodes int
	// Placement selects the frame/heap placement policy for multi-node
	// runs (default PlaceRoundRobin); ignored on a uniprocessor.
	Placement Placement
	// PairedQueueWrites models the MDP's two-word-per-cycle queue
	// write-through: arriving message words buffer in pairs, so only
	// every other word charges a data write. Off by default (the
	// historical one-write-per-word accounting); only meaningful when
	// queue-write tracing is on.
	PairedQueueWrites bool
	// Net overrides the mesh geometry and latency model for multi-node
	// runs (nil = netsim.DefaultConfig for the node count).
	Net *netsim.Config
	// NICCacheKB, NICCacheBlockBytes and NICCacheAssoc size the NIC
	// engine's private I/D cache pair for backends with NIC-offloaded
	// inlets (Caps.NICInlets); zero values select 4 KB, 64-byte blocks,
	// direct-mapped. The NIC cache is a replay-time parameter (like the
	// compute-cache geometry grid) and does not affect simulation
	// results; ignored for other backends.
	NICCacheKB         int
	NICCacheBlockBytes int
	NICCacheAssoc      int
}

// Sim is one ready-to-run simulation: a program compiled by one backend,
// loaded on a machine, with a trace collector and granularity observer
// attached at Run time.
type Sim struct {
	Impl Impl
	Prog *Program
	RT   *Runtime
	M    *machine.Machine

	// Collector counts references and feeds attached cache pairs; add
	// geometries with Collector.AddPair before calling Run.
	Collector *trace.Collector
	// Tracer, when non-nil, replaces Collector as the machine's
	// reference consumer during Run. The record/replay engine attaches
	// a *trace.Recording here so the simulation loop appends packed
	// trace words instead of probing caches inline.
	Tracer machine.Tracer
	// NICTracer, when non-nil on a backend with NIC-offloaded inlets
	// (Caps.NICInlets), receives the high-priority share of the
	// reference stream — inlet and system-handler execution on the NIC
	// engine — while Tracer sees only compute-side references. The
	// union of the two streams is exactly the single-tracer stream.
	NICTracer machine.Tracer
	// Gran accumulates granularity statistics during Run.
	Gran *stats.Granularity
	// Obs is the observability sink from Options, or nil.
	Obs *obs.Sink
	// Host provides untraced access for setup and verification.
	Host *Host

	ran bool
}

// Build compiles prog with the given backend and prepares a simulation.
// Code-generation panics (macro misuse in program bodies) are converted
// into errors. Build is Compile followed by NewSim; callers that run
// the same (program, impl) repeatedly can cache the Compiled and skip
// code generation on later runs.
func Build(impl Impl, prog *Program, opt Options) (*Sim, error) {
	c, err := Compile(impl, prog, opt)
	if err != nil {
		return nil, err
	}
	return c.NewSim(prog, opt)
}

// emitCodeblock emits all inlets (with fall-through threads placed
// immediately after their posting inlet under MD) followed by the
// remaining threads and the shared suspend stub.
func (rt *Runtime) emitCodeblock(cb *Codeblock) {
	for _, in := range cb.inlets {
		b := rt.emitInlet(in)
		if t := b.fallthroughTo; t != nil && !t.emitted && rt.User.PC() == b.fallBRPC {
			// The branch to t was the inlet's last instruction: delete
			// it and lay the thread out adjacently (true fall-through).
			// If a label pins the branch, keep it — the thread is still
			// placed adjacently, so the branch is one wasted cycle.
			rt.User.PopLast()
			rt.emitThread(t)
		}
	}
	for _, t := range cb.threads {
		if !t.emitted {
			rt.emitThread(t)
		}
	}
	if cb.needSusp {
		rt.User.Label(cb.suspLabel)
		rt.User.Suspend()
	}
}

// emitInlet assembles one inlet: mark, frame-pointer load, body.
func (rt *Runtime) emitInlet(in *Inlet) *Body {
	s := rt.User
	in.addr = s.Label(in.Label())
	b := &Body{Segment: s, rt: rt, cb: in.cb, inlet: in}
	s.Mark(isa.MarkInletStart)
	s.LD(isa.RFP, isa.RMsg, 4)
	in.Body(b)
	if !b.terminated {
		panic(fmt.Sprintf("core: inlet %s does not terminate", in.Label()))
	}
	return b
}

// emitThread assembles one thread: mark, interrupt window, body.
func (rt *Runtime) emitThread(t *Thread) {
	s := rt.User
	t.emitted = true
	t.addr = s.Label(t.Label())
	b := &Body{Segment: s, rt: rt, cb: t.cb, thread: t}
	s.Mark(isa.MarkThreadStart)
	switch rt.Impl.Caps().Interrupts {
	case IntPulse:
		// Unenabled AM: interrupts are enabled only briefly at the top
		// of each thread (Figure 2a).
		s.EI()
		s.DI()
	case IntEnabled:
		// Enabled AM: interrupts stay on except around CV access.
		s.EI()
	}
	t.Body(b)
	if !b.terminated {
		panic(fmt.Sprintf("core: thread %s does not terminate", t.Label()))
	}
}

// Run executes the simulation to quiescence and verifies the result.
func (s *Sim) Run() error {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the machine polls
// the context every machine.CancelCheckInterval instructions, so a
// cancelled simulation — even a hung one making no scheduling progress
// — stops within one interval and returns an error wrapping ctx.Err().
// A context that can never be cancelled costs nothing.
func (s *Sim) RunContext(ctx context.Context) error {
	if s.ran {
		return fmt.Errorf("core: %s/%s already ran", s.Prog.Name, s.Impl)
	}
	s.ran = true
	if s.Tracer != nil {
		s.M.SetTracer(s.Tracer)
	} else {
		s.M.SetTracer(s.Collector)
	}
	if s.NICTracer != nil {
		s.M.SetNICTracer(s.NICTracer)
	}
	s.M.SetObserver(s.Gran)
	if err := s.M.RunContext(ctx); err != nil {
		return fmt.Errorf("core: %s/%s: %w", s.Prog.Name, s.Impl, err)
	}
	s.Gran.TotalInstrs = s.M.Instructions()
	s.Gran.Finish()
	if s.Obs != nil {
		s.finishMetrics()
	}
	if s.Prog.Verify != nil {
		if err := s.Prog.Verify(s.Host); err != nil {
			return fmt.Errorf("core: %s/%s verify: %w", s.Prog.Name, s.Impl, err)
		}
	}
	return nil
}

// Close releases the simulation's pooled resources — currently the
// machine's data memory, whose stored prefix is cleared and recycled
// for the next Sim. Call it only after extracting every statistic and
// verification result; the machine must not run or be inspected through
// Host afterwards. Close is optional (an unclosed Sim is merely garbage)
// and safe to call once on any Sim, including one whose Run failed.
func (s *Sim) Close() {
	if s.M == nil {
		return
	}
	s.M.Mem.Release()
	s.M.Mem = nil
}

// finishMetrics folds the run's aggregate statistics into the sink's
// registry: scheduler counts, the quantum histograms, machine-level
// instruction mix and queue high-water marks, and (when the trace
// collector ran inline) the per-class reference counts.
func (s *Sim) finishMetrics() {
	r := s.Obs.Metrics
	g := s.Gran
	r.Counter("tam.threads").Add(g.Threads)
	r.Counter("tam.inlets").Add(g.Inlets)
	r.Counter("tam.quanta").Add(g.Quanta)
	r.Counter("tam.activations").Add(g.Activations)
	r.Counter("dispatch.low").Add(g.Dispatches[0])
	r.Counter("dispatch.high").Add(g.Dispatches[1])
	r.Histogram("quantum.threads").Merge(&g.QuantumHist)
	r.Histogram("quantum.instrs").Merge(&g.QuantumInstrs)
	s.M.FinishMetrics()
	if s.Tracer == nil {
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			name := cls.String()
			r.Counter("ref.fetch." + name).Add(s.Collector.Fetches[cls])
			r.Counter("ref.read." + name).Add(s.Collector.Reads[cls])
			r.Counter("ref.write." + name).Add(s.Collector.Writes[cls])
		}
	}
}

// Host gives programs untraced (loader/debugger) access to the simulated
// machine for setup and verification. On a multi-node cluster it spans
// every node: host data allocations follow the placement policy across
// the per-node heap partitions, the root frame lives in node 0's frame
// partition, and Start routes the boot message to the frame's owner.
// Peeks and result reads go through node 0, whose system data holds the
// result area (results are stored by the root activation, which node 0
// owns). With one node the behaviour is identical to the historical
// uniprocessor host.
type Host struct {
	impl       Impl
	nodes      int
	placement  Placement
	frameShift uint
	heapShift  uint
	ms         []*machine.Machine
	heapBump   []uint32 // per-node heap bump (host view)
	rr         int      // round-robin cursor for AllocData
}

// newUniHost returns the uniprocessor host for a single machine.
func newUniHost(impl Impl, m *machine.Machine) *Host {
	fs, hs := partitionShifts(1)
	return &Host{
		impl: impl, nodes: 1, frameShift: fs, heapShift: hs,
		ms: []*machine.Machine{m}, heapBump: []uint32{mem.HeapBase},
	}
}

// heapLimit returns the exclusive upper bound of node k's heap chunk.
func (h *Host) heapLimit(k int) uint32 {
	if h.nodes <= 1 {
		return mem.TopOfMemory
	}
	return mem.HeapBase + uint32(k+1)<<h.heapShift
}

// AllocData reserves words of heap and returns its base address. The
// memory is zero-initialized (integer zeros). On a cluster the chunk is
// carved from one node's heap partition, chosen by the placement policy
// (round-robin scatters successive host allocations across the mesh).
func (h *Host) AllocData(words int) uint32 {
	k := 0
	if h.nodes > 1 && h.placement == PlaceRoundRobin {
		k = h.rr
		h.rr = (h.rr + 1) % h.nodes
	}
	a := h.heapBump[k]
	end := a + uint32(words)*mem.WordBytes
	if end > h.heapLimit(k) {
		panic("core: heap exhausted")
	}
	h.heapBump[k] = end
	// Keep node k's dynamic allocator downstream of host data.
	h.ms[k].Mem.Store(GHeapBump, word.Ptr(end))
	return a
}

// AllocIStruct reserves words of heap initialized to the I-structure
// empty state.
func (h *Host) AllocIStruct(words int) uint32 {
	a := h.AllocData(words)
	for i := 0; i < words; i++ {
		h.ms[0].Mem.Store(a+uint32(4*i), word.Empty())
	}
	return a
}

// Poke writes a word of simulated memory without tracing. On a cluster
// the write goes through node 0 (the frame and heap segments are shared;
// system data addressed this way is node 0's).
func (h *Host) Poke(addr uint32, w word.Word) { h.ms[0].Mem.Store(addr, w) }

// PokeInt writes an integer word.
func (h *Host) PokeInt(addr uint32, v int64) { h.Poke(addr, word.Int(v)) }

// PokeFloat writes a float word.
func (h *Host) PokeFloat(addr uint32, v float64) { h.Poke(addr, word.Float(v)) }

// Peek reads a word of simulated memory without tracing (node 0's view).
func (h *Host) Peek(addr uint32) word.Word { return h.ms[0].Mem.Load(addr) }

// Result returns word i of the program result area.
func (h *Host) Result(i int) word.Word {
	return h.Peek(GResultBase + uint32(4*i))
}

// AllocFrame allocates and initializes a frame for cb exactly as the
// frame-allocation handler would, but untraced; used to create the root
// activation. On a cluster the frame comes from node 0's partition.
func (h *Host) AllocFrame(cb *Codeblock) uint32 {
	m := h.ms[0].Mem
	f := m.Load(GFrameBump).Addr()
	nb := f + uint32(cb.frameWords)*mem.WordBytes
	if h.nodes > 1 && nb > mem.FrameBase+uint32(1)<<h.frameShift {
		panic("core: root frame overflows node 0's frame partition")
	}
	m.Store(GFrameBump, word.Ptr(nb))
	m.Store(f+fhDesc, word.Ptr(cb.descAddr))
	if h.impl.Caps().RCV {
		_, rcvOff := cb.layout(h.impl)
		m.Store(f+uint32(rcvOff), word.Int(0)) // bottom sentinel
		m.Store(f+fhRCVTail, word.Ptr(f+uint32(rcvOff)+4))
		m.Store(f+fhFlags, word.Int(0))
	}
	for i, c := range cb.InitCounts {
		m.Store(f+uint32(h.impl.headerWords()*4+4*i), word.Int(c))
	}
	return f
}

// Start injects a message invoking the given inlet of the activation at
// frame, with the given arguments, at the backend's inlet priority. On
// a cluster the message is injected on the node owning the frame.
func (h *Host) Start(in *Inlet, frame uint32, args ...word.Word) error {
	if in.addr == 0 {
		return fmt.Errorf("core: inlet %s has no address (not emitted?)", in.Label())
	}
	ws := make([]word.Word, 0, 2+len(args))
	ws = append(ws, word.Ptr(in.addr), word.Ptr(frame))
	ws = append(ws, args...)
	node := 0
	if h.nodes > 1 {
		node = int((frame >> h.frameShift) & uint32(h.nodes-1))
	}
	return h.ms[node].Inject(int(h.impl.inletPri()), ws)
}
