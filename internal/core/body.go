package core

import (
	"fmt"

	"jmtam/internal/asm"
	"jmtam/internal/isa"
	"jmtam/internal/machine"
)

// Body builds the code of one inlet or thread. It embeds the user-code
// segment, so all plain compute instructions (ALU, loads/stores,
// branches) are available directly; the methods defined on Body are the
// TAM-level macros whose expansion differs between the AM and MD
// backends.
//
// Register conventions inside bodies: R0-R2 are free for program use (R5
// additionally in threads; in inlets R5 is the message base), R3/R4 are
// clobbered by macros, R6 is the frame pointer, and macros that call
// library routines (Post/PostEnd under the AM backends, Fork under OAM)
// clobber R1, R2 and R7. On a multi-node mesh every message-sending
// macro additionally clobbers R3/R4 to compute the destination node, so
// registers passed to them must not be R3.
type Body struct {
	*asm.Segment
	rt     *Runtime
	cb     *Codeblock
	thread *Thread
	inlet  *Inlet

	terminated    bool
	pushed        bool // this body pushed onto the continuation vector
	routePending  bool // multi-node: BeginMsg* awaits the frame word to route by
	fallthroughTo *Thread
	fallBRPC      uint32 // PC just after the candidate fall-through branch
}

func (b *Body) impl() Impl { return b.rt.Impl }

// directStyle reports whether DirectOnly threads are entered by a direct
// control transfer with registers intact: backends with the §2.3 static
// optimizations (when enabled) and backends with OAM-style direct
// transfer.
func (b *Body) directStyle() bool {
	c := b.impl().Caps()
	return (c.StaticOpt && b.rt.mdOpt) || c.DirectTransfer
}

func (b *Body) mustInlet(macro string) {
	if b.inlet == nil {
		panic(fmt.Sprintf("core: %s used outside an inlet", macro))
	}
}

func (b *Body) mustThread(macro string) {
	if b.thread == nil {
		panic(fmt.Sprintf("core: %s used outside a thread", macro))
	}
}

func (b *Body) mustLive(macro string) {
	if b.terminated {
		panic(fmt.Sprintf("core: %s after body terminated", macro))
	}
}

// --- Frame and argument access ---------------------------------------------

// Arg loads message argument i (0-based, following the handler address
// and frame pointer words) into rd. Arguments are read directly from
// message-queue memory through the message base register.
func (b *Body) Arg(rd uint8, i int) {
	b.mustInlet("Arg")
	b.LD(rd, isa.RMsg, int64(4*(2+i)))
}

// LDSlot loads general frame slot i into rd.
func (b *Body) LDSlot(rd uint8, slot int) {
	b.LD(rd, isa.RFP, b.cb.slotOff(b.impl(), slot))
}

// STSlot stores rs into general frame slot i.
func (b *Body) STSlot(slot int, rs uint8) {
	b.ST(isa.RFP, b.cb.slotOff(b.impl(), slot), rs)
}

// SlotOff returns the byte offset of a general frame slot, for indexed
// addressing relative to the frame pointer.
func (b *Body) SlotOff(slot int) int64 { return b.cb.slotOff(b.impl(), slot) }

// TakeArg receives message argument i destined for thread t. Under the
// AM backend (and for threads that are not DirectOnly) the value is
// copied into the frame slot; under the MD backend with a DirectOnly
// target the value simply stays in rd, eliminating the frame store (the
// paper's §2.3 example: removing line I2).
func (b *Body) TakeArg(i int, slot int, rd uint8, t *Thread) {
	b.mustInlet("TakeArg")
	b.Arg(rd, i)
	if b.directStyle() && t.DirectOnly {
		return
	}
	b.STSlot(slot, rd)
}

// ReloadArg makes an argument previously received with TakeArg available
// in rd inside the thread body. Under MD with a DirectOnly thread the
// value is already in the register (eliminating line T1 of §2.3);
// otherwise it is reloaded from the frame slot.
func (b *Body) ReloadArg(rd uint8, slot int) {
	b.mustThread("ReloadArg")
	if b.directStyle() && b.thread.DirectOnly {
		return
	}
	b.LDSlot(rd, slot)
}

// StoreResult writes rs into word i of the host-visible result area.
func (b *Body) StoreResult(i int, rs uint8) {
	if i < 0 || i >= ResultWords {
		panic(fmt.Sprintf("core: result index %d out of range", i))
	}
	b.STAbs(GResultBase+uint32(4*i), rs)
}

// --- Continuation-vector pushes ---------------------------------------------

// pushCV appends the thread's address to the continuation vector: the
// frame-resident ready list when the backend keeps an RCV, the global
// LCV otherwise.
func (b *Body) pushCV(t *Thread) {
	b.pushed = true
	b.MovALabel(4, t.Label())
	if !b.impl().Caps().RCV {
		b.LDAbs(3, GLCVTop)
		b.Mark(isa.MarkLCVPush)
		b.STPost(3, 4)
		b.STAbs(GLCVTop, 3)
	} else {
		b.LD(3, isa.RFP, fhRCVTail)
		b.Mark(isa.MarkRCVPush)
		b.STPost(3, 4)
		b.ST(isa.RFP, fhRCVTail, 3)
	}
}

// decCount emits the entry-count decrement for a synchronizing thread,
// leaving the new count in R3.
func (b *Body) decCount(t *Thread) {
	off := b.cb.countOff(b.impl(), t.Sync)
	b.LD(3, isa.RFP, off)
	b.SubI(3, 3, 1)
	b.ST(isa.RFP, off, 3)
}

// guard wraps continuation-vector manipulation in a DI/EI window under
// the enabled-AM variant, which otherwise leaves interrupts on during
// thread execution (§2.4, Figure 2b).
func (b *Body) guard(f func()) {
	if b.impl().Caps().Interrupts == IntEnabled && b.thread != nil {
		b.DI()
		f()
		b.EI()
		return
	}
	f()
}

// --- Fork / Post / Stop -----------------------------------------------------

// Fork enables thread t from within a thread body (non-tail position):
// the entry count is decremented (for synchronizing threads) and the
// thread address is pushed on the continuation vector when enabled.
func (b *Body) Fork(t *Thread) {
	b.mustThread("Fork")
	b.mustLive("Fork")
	noteTarget(t, b)
	if b.impl().Caps().DirectTransfer {
		// A directly-running thread is outside any activation, so the
		// fork must go through the post routine, which also links the
		// frame into the ready queue.
		b.postBody(t)
		return
	}
	b.guard(func() {
		if t.Sync >= 0 {
			skip := b.rt.uniq(t.Label() + ".fk")
			b.decCount(t)
			b.BNZ(3, skip)
			b.pushCV(t)
			b.Label(skip)
		} else {
			b.pushCV(t)
		}
	})
}

// ForkEnd enables thread t as the thread's final action. For
// non-synchronizing targets the compiler converts the fork into a direct
// branch; synchronizing targets branch when the count reaches zero and
// otherwise stop.
func (b *Body) ForkEnd(t *Thread) {
	b.mustThread("ForkEnd")
	b.mustLive("ForkEnd")
	noteTarget(t, b)
	if t.Sync < 0 {
		if b.impl().Caps().Interrupts == IntEnabled {
			b.DI() // leaving the thread; the target re-enables
		}
		b.BR(t.Label())
		b.terminated = true
		return
	}
	if b.impl().Caps().Interrupts == IntEnabled {
		b.DI()
	}
	b.decCount(t)
	b.BZ(3, t.Label())
	b.stopTail()
	b.terminated = true
}

// Stop ends the thread: under AM control returns to the scheduler's pop
// loop; under MD the next LCV entry is popped, or the task suspends so
// the hardware dispatches the next message.
func (b *Body) Stop() {
	b.mustThread("Stop")
	b.mustLive("Stop")
	if b.impl().Caps().Interrupts == IntEnabled {
		b.DI()
	}
	b.stopTail()
	b.terminated = true
}

// stopTail emits the backend's end-of-task sequence (without marking the
// body terminated, so ForkEnd can reuse it for the not-enabled path).
func (b *Body) stopTail() {
	c := b.impl().Caps()
	switch c.Scheduler {
	case SchedMessage:
		if (b.thread != nil && b.thread.DirectOnly) || b.inlet != nil {
			// Directly-executed code: the task simply ends; pending
			// frames run via the scheduling message.
			b.Suspend()
		} else {
			b.BRA(b.rt.popAddr)
		}
		return
	case SchedBackground:
		b.BRA(b.rt.popAddr)
		return
	}
	// No frame scheduler: when the LCV is statically known to be empty,
	// the stop converts to a suspend (§2.3).
	if c.StaticOpt && b.rt.mdOpt {
		if b.thread != nil && b.thread.DirectOnly && b.thread.entryLCVEmpty && !b.pushed {
			b.Suspend()
			return
		}
		if b.inlet != nil && !b.pushed {
			// Inlets are dispatched only when low priority is idle,
			// so the LCV is empty at inlet entry.
			b.Suspend()
			return
		}
	}
	b.mdPopSeq()
}

// mdPopSeq emits the MD stop: pop the next thread address from the LCV,
// or suspend when it is empty.
func (b *Body) mdPopSeq() {
	susp := b.rt.uniq("md.susp")
	b.LDAbs(3, GLCVTop)
	b.Mark(isa.MarkLCVPop)
	b.LDPre(4, 3)
	b.BZ(4, susp) // hit the bottom sentinel
	b.STAbs(GLCVTop, 3)
	b.JMP(4)
	b.Label(susp)
	b.Suspend()
}

// Post enables thread t from within an inlet (non-tail position).
// Under AM this calls the post library routine (which also manages the
// ready-frame queue); under MD the count is handled inline and the
// thread address pushed on the LCV.
func (b *Body) Post(t *Thread) {
	b.mustInlet("Post")
	b.mustLive("Post")
	noteTarget(t, b)
	b.postBody(t)
}

func (b *Body) postBody(t *Thread) {
	if b.impl().Caps().Scheduler != SchedNone {
		b.MovALabel(1, t.Label())
		if t.Sync >= 0 {
			b.LEA(2, isa.RFP, b.cb.countOff(b.impl(), t.Sync))
		} else {
			b.MovI(2, 0)
		}
		b.JALA(7, b.rt.postAddr)
		return
	}
	if t.Sync >= 0 {
		skip := b.rt.uniq(t.Label() + ".po")
		b.decCount(t)
		b.BNZ(3, skip)
		b.pushCV(t)
		b.Label(skip)
	} else {
		b.pushCV(t)
	}
}

// PostEnd enables thread t as the inlet's final action. Under AM the
// post is followed by a handler suspend. Under MD control transfers
// directly to the thread — falling through when the thread can be placed
// immediately after the inlet, which is the control-locality benefit the
// paper attributes to the message-driven style.
func (b *Body) PostEnd(t *Thread) {
	b.mustInlet("PostEnd")
	b.mustLive("PostEnd")
	noteTarget(t, b)
	if b.impl().Caps().DirectTransfer && t.DirectOnly {
		// Short thread: pass control directly, MD-style.
		b.jumpOrFall(t)
		b.terminated = true
		return
	}
	if b.impl().Caps().Scheduler != SchedNone {
		b.postBody(t)
		b.Suspend()
		b.terminated = true
		return
	}
	t.entryLCVEmpty = !b.pushed
	if t.Sync >= 0 {
		if !b.pushed {
			b.cb.needSusp = true
			b.decCount(t)
			b.BNZ(3, b.cb.suspLabel)
			b.jumpOrFall(t)
		} else {
			b.decCount(t)
			b.BZ(3, t.Label())
			b.mdPopSeq()
		}
		b.terminated = true
		return
	}
	b.jumpOrFall(t)
	b.terminated = true
}

// jumpOrFall transfers control to t. A branch is always emitted; if it
// turns out to be the inlet's final instruction and t has not been
// placed yet, the emitter deletes the branch and lays t out immediately
// after the inlet (a true fall-through), which is safe even when the
// inlet has further Case paths after the PostEnd.
func (b *Body) jumpOrFall(t *Thread) {
	b.BR(t.Label())
	if b.directStyle() && !t.emitted && b.fallthroughTo == nil {
		b.fallthroughTo = t
		b.fallBRPC = b.Segment.PC()
	}
}

// Case defines a local label that is the start of an alternate exit path
// (the target of a conditional branch emitted earlier in the body) and
// reopens the body for emission. Compiled TAM threads routinely have
// several exits, each ending in its own fork or stop.
func (b *Body) Case(label string) {
	b.Segment.Label(label)
	b.terminated = false
}

// EndInlet terminates an inlet that does not end with a post. Under the
// AM backends the handler suspends (handlers run at high priority and
// must never enter the scheduler); under MD any threads the inlet pushed
// are drained from the LCV.
func (b *Body) EndInlet() {
	b.mustInlet("EndInlet")
	b.mustLive("EndInlet")
	if b.impl().Caps().Scheduler != SchedNone {
		b.Suspend()
	} else {
		b.stopTail()
	}
	b.terminated = true
}

// noteTarget validates fork/post targets: the thread must belong to the
// current codeblock, and a DirectOnly thread may be enabled only through
// a single PostEnd.
func noteTarget(t *Thread, b *Body) {
	if t.cb != b.cb {
		panic(fmt.Sprintf("core: thread %s enabled from codeblock %s", t.Label(), b.cb.Name))
	}
	if !t.DirectOnly {
		return
	}
	if b.inlet == nil {
		panic(fmt.Sprintf("core: DirectOnly thread %s enabled from a thread", t.Label()))
	}
	if t.postCount > 0 {
		panic(fmt.Sprintf("core: DirectOnly thread %s enabled from multiple sites", t.Label()))
	}
	t.postCount++
}

// --- Multi-node routing ------------------------------------------------------

// routeHome emits the home-node computation for the segment address in
// reg, directing the open message to the node owning that address.
// shift selects the segment partition (rt.frameShift or rt.heapShift).
// Clobbers R3, so reg must not be R3. No-op on a uniprocessor.
func (b *Body) routeHome(reg uint8, shift uint) {
	if !b.rt.multi() {
		return
	}
	if reg == 3 {
		panic("core: routed address register collides with routing scratch R3")
	}
	b.ShrI(3, reg, int64(shift))
	b.AndI(3, 3, int64(b.rt.nodes-1))
	b.MsgDest(3)
}

// placeAlloc emits the destination of an allocation request (falloc or
// halloc) according to the placement policy. Clobbers R3/R4. Must be
// called with a message open. No-op on a uniprocessor.
func (b *Body) placeAlloc() {
	if !b.rt.multi() {
		return
	}
	switch b.rt.placement {
	case PlaceRoundRobin:
		b.LDAbs(3, GPlaceNext)
		b.AddI(4, 3, 1)
		b.AndI(4, 4, int64(b.rt.nodes-1))
		b.STAbs(GPlaceNext, 4)
		b.MsgDest(3)
	case PlaceLocal:
		// The request stays on the issuing node.
	}
}

// SendW appends register ra to the message being built. Between
// BeginMsg/BeginMsgDyn and SendE the first SendW must carry the
// destination frame pointer (the standard inlet-message convention); on
// a multi-node mesh the builder derives the message's destination node
// from that first word, clobbering R3.
func (b *Body) SendW(ra uint8) {
	if b.routePending {
		b.routePending = false
		b.routeHome(ra, b.rt.frameShift)
	}
	b.Segment.SendW(ra)
}

// SendE finishes the message being built.
func (b *Body) SendE() {
	if b.routePending {
		panic("core: BeginMsg message finished without a destination frame word")
	}
	b.Segment.SendE()
}

// --- Split-phase operations and system calls --------------------------------

// IFetch issues a split-phase I-structure read of the heap cell whose
// address is in addrReg; the value is delivered to in (an inlet of the
// current codeblock) as its argument. On a multi-node mesh the request
// is routed to the cell's home node — a remote ifetch is itself an
// active message, handled by the remote node's iread handler, whose
// reply routes back to this frame's owner.
func (b *Body) IFetch(addrReg uint8, in *Inlet) {
	b.mustLive("IFetch")
	b.MsgI(machine.High)
	b.routeHome(addrReg, b.rt.heapShift)
	b.SendWA(b.rt.ireadAddr)
	b.SendW(addrReg)
	b.SendWI(b.impl().inletPri())
	b.SendWALabel(in.Label())
	b.SendW(isa.RFP)
	b.SendE()
}

// IStore issues a split-phase I-structure write of valReg to the heap
// cell whose address is in addrReg, waking any deferred readers.
func (b *Body) IStore(addrReg, valReg uint8) {
	b.mustLive("IStore")
	b.MsgI(machine.High)
	b.routeHome(addrReg, b.rt.heapShift)
	b.SendWA(b.rt.iwriteAddr)
	b.SendW(addrReg)
	b.SendW(valReg)
	b.SendE()
}

// FAlloc requests a frame for codeblock target; the new frame pointer is
// delivered to replyInlet (an inlet of the current codeblock). On a
// multi-node mesh the frame-placement policy decides which node the
// request — and therefore the activation — lands on.
func (b *Body) FAlloc(target *Codeblock, replyInlet *Inlet) {
	b.mustLive("FAlloc")
	if target.descAddr == 0 {
		panic(fmt.Sprintf("core: FAlloc target %s not laid out", target.Name))
	}
	b.MsgI(machine.High)
	b.placeAlloc()
	b.SendWA(b.rt.fallocAddr)
	b.SendWA(target.descAddr)
	b.SendWI(b.impl().inletPri())
	b.SendWALabel(replyInlet.Label())
	b.SendW(isa.RFP)
	b.SendE()
}

// FAllocOn is FAlloc with explicit placement: the frame request is sent
// to the node whose number is in nodeReg, overriding the placement
// policy. On a uniprocessor the node register is ignored. nodeReg must
// not be R3.
func (b *Body) FAllocOn(target *Codeblock, replyInlet *Inlet, nodeReg uint8) {
	b.mustLive("FAllocOn")
	if target.descAddr == 0 {
		panic(fmt.Sprintf("core: FAllocOn target %s not laid out", target.Name))
	}
	b.MsgI(machine.High)
	if b.rt.multi() {
		if nodeReg == 3 {
			panic("core: FAllocOn node register collides with routing scratch R3")
		}
		b.MsgDest(nodeReg)
	}
	b.SendWA(b.rt.fallocAddr)
	b.SendWA(target.descAddr)
	b.SendWI(b.impl().inletPri())
	b.SendWALabel(replyInlet.Label())
	b.SendW(isa.RFP)
	b.SendE()
}

// HAlloc requests a heap allocation of the number of words held in
// wordsReg; the base address is delivered to replyInlet. The words are
// initialized to the I-structure empty state.
func (b *Body) HAlloc(wordsReg uint8, replyInlet *Inlet) {
	b.mustLive("HAlloc")
	b.MsgI(machine.High)
	b.placeAlloc()
	b.SendWA(b.rt.hallocAddr)
	b.SendW(wordsReg)
	b.SendWI(b.impl().inletPri())
	b.SendWALabel(replyInlet.Label())
	b.SendW(isa.RFP)
	b.SendE()
}

// SetCountImm resets entry-count slot i to v. Loop bodies that reuse a
// synchronizing thread must re-arm its entry count each iteration, as the
// TAM compiler does for k-bounded loops.
func (b *Body) SetCountImm(i int, v int64) {
	b.MovI(3, v)
	b.ST(isa.RFP, b.cb.countOff(b.impl(), i), 3)
}

// ReleaseFrame returns the current frame to its codeblock's free list.
// The body must not touch the frame afterwards.
func (b *Body) ReleaseFrame() {
	b.mustLive("ReleaseFrame")
	b.MsgI(machine.High)
	b.routeHome(isa.RFP, b.rt.frameShift)
	b.SendWA(b.rt.releaseAddr)
	b.SendW(isa.RFP)
	b.SendE()
}

// SendMsg sends values to a statically-known inlet of the codeblock
// activation whose frame pointer is in frameReg.
func (b *Body) SendMsg(in *Inlet, frameReg uint8, vals ...uint8) {
	b.mustLive("SendMsg")
	b.MsgI(b.impl().inletPri())
	b.routeHome(frameReg, b.rt.frameShift)
	b.SendWALabel(in.Label())
	b.Segment.SendW(frameReg)
	for _, v := range vals {
		b.SendW(v)
	}
	b.SendE()
}

// BeginMsg starts a message to a statically-known inlet at the backend's
// inlet priority. The body must then append the destination frame
// pointer and the argument words with SendW (loads may be interleaved
// with the sends, as MDP code does) and finish with SendE. Do not call
// Post, Fork, FAlloc or any other message-sending macro between BeginMsg
// and SendE: the hardware has one send buffer per priority level. On a
// multi-node mesh the first SendW after BeginMsg routes the message to
// the frame's owner (see Body.SendW).
func (b *Body) BeginMsg(in *Inlet) {
	b.mustLive("BeginMsg")
	b.MsgI(b.impl().inletPri())
	b.SendWALabel(in.Label())
	b.routePending = b.rt.multi()
}

// BeginMsgDyn starts a message to the inlet whose code address is in
// inletReg; see BeginMsg.
func (b *Body) BeginMsgDyn(inletReg uint8) {
	b.mustLive("BeginMsgDyn")
	b.MsgI(b.impl().inletPri())
	b.Segment.SendW(inletReg)
	b.routePending = b.rt.multi()
}

// SendMsgDyn sends values to the inlet whose code address is in
// inletReg, belonging to the activation whose frame is in frameReg; used
// for parent continuations passed as arguments.
func (b *Body) SendMsgDyn(inletReg, frameReg uint8, vals ...uint8) {
	b.mustLive("SendMsgDyn")
	if b.rt.multi() && inletReg == 3 {
		panic("core: SendMsgDyn inlet register collides with routing scratch R3")
	}
	b.MsgI(b.impl().inletPri())
	b.routeHome(frameReg, b.rt.frameShift)
	b.Segment.SendW(inletReg)
	b.Segment.SendW(frameReg)
	for _, v := range vals {
		b.SendW(v)
	}
	b.SendE()
}

// InletAddr loads the code address of an inlet into rd, so it can be
// passed to a child activation as a return continuation.
func (b *Body) InletAddr(rd uint8, in *Inlet) {
	b.MovALabel(rd, in.Label())
}
