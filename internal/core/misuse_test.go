package core

import (
	"strings"
	"testing"

	"jmtam/internal/word"
)

// buildOne wraps Build for misuse tests, returning the error.
func buildOne(p *Program) error {
	_, err := Build(ImplMD, p, Options{})
	return err
}

// minimal returns a valid single-codeblock program whose bodies can be
// overridden by the caller before building.
func minimalProgram(cb *Codeblock, start *Inlet) *Program {
	return &Program{
		Name:   "misuse",
		Blocks: []*Codeblock{cb},
		Setup: func(h *Host) error {
			f := h.AllocFrame(cb)
			return h.Start(start, f, word.Int(0))
		},
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"no name",
			&Program{},
			"without name",
		},
		{
			"no setup",
			&Program{Name: "x"},
			"missing Setup",
		},
		{
			"count mismatch",
			&Program{Name: "x", Setup: func(*Host) error { return nil },
				Blocks: []*Codeblock{{Name: "cb", NumCounts: 2, InitCounts: []int64{1}}}},
			"InitCounts",
		},
	}
	for _, c := range cases {
		err := buildOne(c.prog)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestDuplicateCodeblockNames(t *testing.T) {
	mk := func() *Codeblock {
		cb := &Codeblock{Name: "dup"}
		t0 := cb.AddThread("t", -1, func(b *Body) { b.Stop() })
		cb.AddInlet("i", func(b *Body) { b.PostEnd(t0) })
		return cb
	}
	p := &Program{Name: "x", Blocks: []*Codeblock{mk(), mk()},
		Setup: func(*Host) error { return nil }}
	if err := buildOne(p); err == nil || !strings.Contains(err.Error(), "duplicate codeblock") {
		t.Errorf("err = %v", err)
	}
}

func TestSyncDirectOnlyRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb", NumCounts: 1, InitCounts: []int64{2}}
	tt := cb.AddThread("t", 0, func(b *Body) { b.Stop() })
	tt.DirectOnly = true
	cb.AddInlet("i", func(b *Body) { b.PostEnd(tt) })
	p := minimalProgram(cb, cb.inlets[0])
	if err := buildOne(p); err == nil || !strings.Contains(err.Error(), "DirectOnly") {
		t.Errorf("err = %v", err)
	}
}

func TestForkInInletRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb"}
	tt := cb.AddThread("t", -1, func(b *Body) { b.Stop() })
	start := cb.AddInlet("start", func(b *Body) {
		b.Fork(tt) // Fork is a thread-body macro
		b.EndInlet()
	})
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "Fork used outside a thread") {
		t.Errorf("err = %v", err)
	}
}

func TestPostInThreadRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb"}
	var t2 *Thread
	t2 = cb.AddThread("t2", -1, func(b *Body) { b.Stop() })
	cb.AddThread("t1", -1, func(b *Body) {
		b.Post(t2) // Post is an inlet-body macro
		b.Stop()
	})
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(cb.threads[1]) })
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "Post used outside an inlet") {
		t.Errorf("err = %v", err)
	}
}

func TestEmissionAfterTerminationRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb"}
	tt := cb.AddThread("t", -1, func(b *Body) {
		b.Stop()
		b.Stop() // body already terminated
	})
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(tt) })
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "after body terminated") {
		t.Errorf("err = %v", err)
	}
}

func TestUnterminatedBodyRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb"}
	tt := cb.AddThread("t", -1, func(b *Body) {
		b.MovI(0, 1) // never stops
	})
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(tt) })
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "does not terminate") {
		t.Errorf("err = %v", err)
	}
}

func TestDirectOnlyFromThreadRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb"}
	var direct *Thread
	direct = cb.AddThread("direct", -1, func(b *Body) { b.Stop() })
	direct.DirectOnly = true
	cb.AddThread("forker", -1, func(b *Body) {
		b.ForkEnd(direct)
	})
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(cb.threads[1]) })
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "enabled from a thread") {
		t.Errorf("err = %v", err)
	}
}

func TestDirectOnlyMultiplePostsRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb"}
	var direct *Thread
	direct = cb.AddThread("direct", -1, func(b *Body) { b.Stop() })
	direct.DirectOnly = true
	cb.AddInlet("i1", func(b *Body) { b.PostEnd(direct) })
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(direct) })
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "multiple sites") {
		t.Errorf("err = %v", err)
	}
}

func TestCrossCodeblockForkRejected(t *testing.T) {
	other := &Codeblock{Name: "other"}
	to := other.AddThread("t", -1, func(b *Body) { b.Stop() })
	other.AddInlet("i", func(b *Body) { b.PostEnd(to) })

	cb := &Codeblock{Name: "cb"}
	tt := cb.AddThread("t", -1, func(b *Body) {
		b.ForkEnd(to) // thread of another codeblock
	})
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(tt) })
	p := minimalProgram(cb, start)
	p.Blocks = append(p.Blocks, other)
	if err := buildOne(p); err == nil ||
		!strings.Contains(err.Error(), "enabled from codeblock") {
		t.Errorf("err = %v", err)
	}
}

func TestSlotOutOfRangeRejected(t *testing.T) {
	cb := &Codeblock{Name: "cb", NumSlots: 2}
	tt := cb.AddThread("t", -1, func(b *Body) {
		b.LDSlot(0, 5)
		b.Stop()
	})
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(tt) })
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestResultIndexRange(t *testing.T) {
	cb := &Codeblock{Name: "cb"}
	tt := cb.AddThread("t", -1, func(b *Body) {
		b.StoreResult(ResultWords, 0)
		b.Stop()
	})
	start := cb.AddInlet("start", func(b *Body) { b.PostEnd(tt) })
	if err := buildOne(minimalProgram(cb, start)); err == nil ||
		!strings.Contains(err.Error(), "result index") {
		t.Errorf("err = %v", err)
	}
}

func TestSimRunTwiceFails(t *testing.T) {
	sim, err := Build(ImplMD, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err == nil {
		t.Error("second Run did not fail")
	}
}

func TestDumpListsRuntimeRoutines(t *testing.T) {
	sim, err := Build(ImplAM, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sim.RT.Sys.Dump()
	for _, label := range []string{"sys.falloc:", "sys.iread:", "sys.iwrite:", "sys.post:", "sys.sched:"} {
		if !strings.Contains(d, label) {
			t.Errorf("system dump missing %s", label)
		}
	}
	md, err := Build(ImplMD, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(md.RT.Sys.Dump(), "sys.post:") {
		t.Error("MD backend emitted the AM post routine")
	}
}

// TestBackendCodeSizes verifies the §2.3 control-locality claim at the
// static level: for the same program, the MD backend's user code places
// each inlet next to the thread it enables, while the AM backend's extra
// system machinery (post routine, scheduler) makes its system segment
// larger.
func TestBackendCodeSizes(t *testing.T) {
	am, err := Build(ImplAM, callProgram(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	md, err := Build(ImplMD, callProgram(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if md.RT.Sys.Len() >= am.RT.Sys.Len() {
		t.Errorf("MD system code (%d) not smaller than AM's (%d)",
			md.RT.Sys.Len(), am.RT.Sys.Len())
	}
}
