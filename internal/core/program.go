package core

import "fmt"

// Program is a TAM program: a set of codeblocks plus host-side setup
// (heap initialization, start message injection) and verification.
// Programs are backend-independent; both the AM and MD backends compile
// the same Program.
type Program struct {
	Name string
	// Blocks lists the program's codeblocks; the order determines code
	// layout in the user segment.
	Blocks []*Codeblock
	// Setup initializes heap data, allocates the root frame and injects
	// the start message(s) through the Host. It runs after code
	// generation, outside the simulation (untraced).
	Setup func(h *Host) error
	// Verify checks results after the machine halts.
	Verify func(h *Host) error
}

// validate checks structural invariants before code generation.
func (p *Program) validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: program without name")
	}
	seen := make(map[string]bool)
	for _, cb := range p.Blocks {
		if cb.Name == "" {
			return fmt.Errorf("core: %s: codeblock without name", p.Name)
		}
		if seen[cb.Name] {
			return fmt.Errorf("core: %s: duplicate codeblock %q", p.Name, cb.Name)
		}
		seen[cb.Name] = true
		if err := cb.validate(); err != nil {
			return fmt.Errorf("core: %s: %w", p.Name, err)
		}
	}
	if p.Setup == nil {
		return fmt.Errorf("core: %s: missing Setup", p.Name)
	}
	return nil
}

// Codeblock corresponds to a compiled Id codeblock: a frame layout
// (synchronization counters plus local slots) with a set of inlets
// (message handlers that receive arguments) and threads (straight-line
// code scheduled via fork/post).
type Codeblock struct {
	Name string
	// NumCounts is the number of entry-count words in the frame.
	NumCounts int
	// InitCounts gives the initial value of each entry count, applied
	// by the frame-allocation handler. len(InitCounts) == NumCounts.
	InitCounts []int64
	// NumSlots is the number of general frame slots (arguments, locals).
	NumSlots int
	// RCVCap is the capacity, in words, of the frame's ready-thread
	// list under the AM implementation. It must be at least the
	// maximum number of simultaneously enabled threads. Zero selects
	// DefaultRCVCap.
	RCVCap int

	inlets  []*Inlet
	threads []*Thread

	// Assigned during layout/codegen.
	descAddr   uint32
	frameWords int
	suspLabel  string
	needSusp   bool
}

// DefaultRCVCap is the default per-frame ready-list capacity (words).
const DefaultRCVCap = 32

// Inlet declares a message handler of the codeblock. Body is emitted by
// the backend with backend-specific macro expansions.
type Inlet struct {
	Name string
	// Body emits the inlet's code through the Body builder. It must
	// end with PostEnd, EndInlet, or another terminating macro.
	Body func(b *Body)

	cb   *Codeblock
	addr uint32
}

// Thread declares a thread of the codeblock.
type Thread struct {
	Name string
	// Sync is the entry-count slot index for synchronizing threads, or
	// -1 for non-synchronizing threads (implicit entry count of one).
	Sync int
	// DirectOnly asserts that the thread is enabled only by a single
	// inlet's PostEnd and is non-synchronizing, allowing the MD backend
	// to fall straight through from the inlet and keep argument values
	// in registers (the §2.3 optimization: eliminating the frame
	// store, the post, and the reload).
	DirectOnly bool
	// Body emits the thread's code. It must end with Stop, ForkEnd, or
	// another terminating macro.
	Body func(b *Body)

	cb      *Codeblock
	addr    uint32
	emitted bool
	// entryLCVEmpty records (MD only) that the LCV is provably empty
	// when the thread is entered, enabling the stop-to-suspend
	// conversion of §2.3. Set during the posting inlet's emission.
	entryLCVEmpty bool
	// postCount counts PostEnd sites targeting a DirectOnly thread.
	postCount int
}

// AddInlet registers an inlet and returns it.
func (cb *Codeblock) AddInlet(name string, body func(b *Body)) *Inlet {
	in := &Inlet{Name: name, Body: body, cb: cb}
	cb.inlets = append(cb.inlets, in)
	return in
}

// AddThread registers a synchronizing or non-synchronizing thread.
func (cb *Codeblock) AddThread(name string, sync int, body func(b *Body)) *Thread {
	t := &Thread{Name: name, Sync: sync, Body: body, cb: cb}
	cb.threads = append(cb.threads, t)
	return t
}

// Label returns the assembler label of the inlet.
func (in *Inlet) Label() string { return in.cb.Name + "." + in.Name }

// Addr returns the inlet's code address; valid after code generation.
func (in *Inlet) Addr() uint32 { return in.addr }

// Label returns the assembler label of the thread.
func (t *Thread) Label() string { return t.cb.Name + "." + t.Name }

func (cb *Codeblock) validate() error {
	if len(cb.InitCounts) != cb.NumCounts {
		return fmt.Errorf("codeblock %s: %d InitCounts for %d counts",
			cb.Name, len(cb.InitCounts), cb.NumCounts)
	}
	names := make(map[string]bool)
	for _, in := range cb.inlets {
		if in.Body == nil {
			return fmt.Errorf("codeblock %s: inlet %s without body", cb.Name, in.Name)
		}
		if names[in.Name] {
			return fmt.Errorf("codeblock %s: duplicate name %s", cb.Name, in.Name)
		}
		names[in.Name] = true
	}
	for _, t := range cb.threads {
		if t.Body == nil {
			return fmt.Errorf("codeblock %s: thread %s without body", cb.Name, t.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("codeblock %s: duplicate name %s", cb.Name, t.Name)
		}
		names[t.Name] = true
		if t.Sync >= cb.NumCounts {
			return fmt.Errorf("codeblock %s: thread %s sync slot %d out of range",
				cb.Name, t.Name, t.Sync)
		}
		if t.DirectOnly && t.Sync >= 0 {
			return fmt.Errorf("codeblock %s: thread %s is DirectOnly but synchronizing",
				cb.Name, t.Name)
		}
	}
	return nil
}

// slotOff returns the byte offset of general slot i for the backend.
func (cb *Codeblock) slotOff(impl Impl, i int) int64 {
	if i < 0 || i >= cb.NumSlots {
		panic(fmt.Sprintf("core: %s: slot %d out of range [0,%d)", cb.Name, i, cb.NumSlots))
	}
	return int64(impl.headerWords()+cb.NumCounts+i) * 4
}

// countOff returns the byte offset of entry-count slot i.
func (cb *Codeblock) countOff(impl Impl, i int) int64 {
	if i < 0 || i >= cb.NumCounts {
		panic(fmt.Sprintf("core: %s: count %d out of range [0,%d)", cb.Name, i, cb.NumCounts))
	}
	return int64(impl.headerWords()+i) * 4
}

// layout computes the frame size and RCV offset for the backend.
func (cb *Codeblock) layout(impl Impl) (frameWords int, rcvOffBytes int64) {
	rcv := 0
	if impl.Caps().RCV {
		rcv = cb.RCVCap
		if rcv == 0 {
			rcv = DefaultRCVCap
		}
		rcv++ // bottom sentinel word terminating the pop loop
	}
	base := impl.headerWords() + cb.NumCounts + cb.NumSlots
	return base + rcv, int64(base) * 4
}
