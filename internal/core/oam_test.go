package core

import (
	"strings"
	"testing"
	"testing/quick"

	"jmtam/internal/machine"
)

func TestOAMSystemCode(t *testing.T) {
	sim, err := Build(ImplOAM, sumLoopProgram(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sim.RT.Sys.Dump()
	if !strings.Contains(d, "sys.oamsched:") {
		t.Error("OAM backend missing its message-driven scheduler")
	}
	if !strings.Contains(d, "sys.post:") {
		t.Error("OAM backend missing the post routine")
	}
	if strings.Contains(d, "sys.sched:") {
		t.Error("OAM backend emitted the AM background scheduler")
	}
	// OAM threads need no interrupt windows: user code contains no EI.
	if u := sim.RT.User.Dump(); strings.Contains(u, "\tei\n") || strings.Contains(u, " ei\n") {
		t.Error("OAM user code contains interrupt-window instructions")
	}
}

func TestOAMInletPriority(t *testing.T) {
	// Under AM, user inlets dispatch at high priority; under OAM and MD
	// they dispatch at low priority (only system handlers run high).
	for _, c := range []struct {
		impl     Impl
		wantHigh bool
	}{
		{ImplAM, true},
		{ImplMD, false},
		{ImplOAM, false},
	} {
		sim := runProgram(t, c.impl, sumLoopProgram(20))
		// sumloop sends no syscall messages, so high-priority
		// dispatches come only from inlets.
		high := sim.Gran.Dispatches[machine.High]
		if c.wantHigh && high == 0 {
			t.Errorf("%v: no high-priority dispatches", c.impl)
		}
		if !c.wantHigh && high != 0 {
			t.Errorf("%v: %d unexpected high-priority dispatches", c.impl, high)
		}
	}
}

func TestOAMUsesSchedulingMessages(t *testing.T) {
	// The call/return program posts non-DirectOnly threads, which must
	// flow through the ready-frame queue and its scheduling message.
	sim := runProgram(t, ImplOAM, callProgram(5))
	if sim.Gran.Activations == 0 {
		t.Error("OAM never activated a frame through its scheduler")
	}
}

// TestSumLoopProperty checks all four backends against the closed form
// on random inputs.
func TestSumLoopProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int64(raw%60) + 1
		for _, impl := range allImpls {
			sim, err := Build(impl, sumLoopProgram(n), Options{MaxInstructions: 10_000_000})
			if err != nil {
				return false
			}
			if err := sim.Run(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestNoMDOptimizeAddsInstructions(t *testing.T) {
	opt, err := Build(ImplMD, callProgram(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Run(); err != nil {
		t.Fatal(err)
	}
	unopt, err := Build(ImplMD, callProgram(7), Options{NoMDOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := unopt.Run(); err != nil {
		t.Fatal(err)
	}
	if opt.M.Instructions() >= unopt.M.Instructions() {
		t.Errorf("optimized MD (%d instrs) not below unoptimized (%d)",
			opt.M.Instructions(), unopt.M.Instructions())
	}
}

func TestOptionsAffectOnlyMD(t *testing.T) {
	a, err := Build(ImplAM, callProgram(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ImplAM, callProgram(7), Options{NoMDOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if a.M.Instructions() != b.M.Instructions() {
		t.Error("NoMDOptimize changed the AM backend")
	}
}
