package core

import (
	"context"
	"fmt"

	"jmtam/internal/cluster"
	"jmtam/internal/machine"
	"jmtam/internal/mem"
	"jmtam/internal/netsim"
	"jmtam/internal/obs"
	"jmtam/internal/stats"
	"jmtam/internal/trace"
	"jmtam/internal/word"
)

// ClusterSim is one ready-to-run multi-node simulation: a program
// compiled mesh-aware by one backend, loaded on N machines that share
// the compiled code store and the frame/heap memory segments (each with
// private system data holding its hardware queues, runtime globals and
// LCV), driven in lockstep against the netsim mesh. The six benchmarks
// run on it unmodified: frame placement, remote I-structure access and
// inter-frame messages are routed by the compiled runtime code, not by
// the programs.
type ClusterSim struct {
	Impl  Impl
	Prog  *Program
	RT    *Runtime
	C     *cluster.Cluster
	Nodes int

	// Collectors count references per node and feed attached cache
	// pairs; index = node id.
	Collectors []*trace.Collector
	// Tracers, when non-nil, replace the Collectors as the machines'
	// reference consumers during Run (one per node, for the
	// record/replay engine).
	Tracers []machine.Tracer
	// NICTracers, when non-nil, receive each node's high-priority
	// reference share (NIC-offloaded inlet execution) instead of the
	// node's main tracer; only meaningful for backends with the
	// NICInlets capability.
	NICTracers []machine.Tracer
	// Grans accumulate per-node granularity statistics during Run.
	Grans []*stats.Granularity
	// Obs is the observability sink from Options, or nil.
	Obs *obs.Sink
	// Host provides untraced access for setup and verification.
	Host *Host

	// MaxTicks bounds RunContext (0 = no limit).
	MaxTicks uint64

	ran bool
}

// NewCluster instantiates a multi-node simulation from the compiled
// artifact: N fresh machines over shared frame/heap memory, runtime
// globals and descriptors materialized in every node's system data with
// the frame and heap bump allocators partitioned across nodes, the
// program's Setup run through the node-aware Host, and (for the AM
// backends) the scheduler booted on every node. Works for any compiled
// node count including 1, so an N=1 cluster can be compared
// byte-for-byte against the uniprocessor NewSim.
func (c *Compiled) NewCluster(prog *Program, opt Options) (cs *ClusterSim, err error) {
	defer func() {
		if r := recover(); r != nil {
			cs, err = nil, fmt.Errorf("core: building %s/%v cluster: %v", prog.Name, c.Impl, r)
		}
	}()
	if err := c.bind(prog); err != nil {
		return nil, err
	}
	impl := c.Impl
	nodes := c.nodes
	if nodes < 1 {
		nodes = 1
	}

	netcfg := netsim.DefaultConfig(nodes)
	if opt.Net != nil {
		netcfg = *opt.Net
	}
	if netcfg.Width*netcfg.Height < nodes {
		return nil, fmt.Errorf("core: %d nodes exceed the %dx%d mesh",
			nodes, netcfg.Width, netcfg.Height)
	}

	frameShift, heapShift := partitionShifts(nodes)
	frameChunk := uint32(1) << frameShift
	heapChunk := uint32(1) << heapShift

	cfg := machine.Config{
		QueueCapWords:     opt.QueueCapWords,
		CountQueueWrites:  !opt.NoQueueWriteTrace,
		PairedQueueWrites: opt.PairedQueueWrites,
		MaxInstructions:   opt.MaxInstructions,
	}

	base := mem.NewDefault()
	ms := make([]*machine.Machine, nodes)
	heapBumps := make([]uint32, nodes)
	for k := 0; k < nodes; k++ {
		m := base
		if k > 0 {
			m = mem.NewShared(base, mem.DefaultSysDataWords)
		}
		ms[k] = machine.NewMachine(m, c.Code, cfg)

		// Initialize node k's runtime globals: the bump allocators
		// start at the node's partition chunk, and the round-robin
		// placement cursor is staggered so node k's first allocation
		// request goes to node k+1 (spreading work even when one node
		// drives the fan-out).
		m.Store(GFrameBump, word.Ptr(mem.FrameBase+uint32(k)*frameChunk))
		heapBumps[k] = mem.HeapBase + uint32(k)*heapChunk
		m.Store(GHeapBump, word.Ptr(heapBumps[k]))
		m.Store(GNodeBump, word.Ptr(nodePoolBase))
		m.Store(GNodeFree, word.Int(0))
		m.Store(GReadyHead, word.Int(0))
		m.Store(GReadyTail, word.Int(0))
		m.Store(GLCVBase, word.Int(0)) // LCV bottom sentinel
		m.Store(GLCVTop, word.Ptr(GLCVBase+4))
		m.Store(GPlaceNext, word.Int(int64((k+1)%nodes)))
		for _, cb := range prog.Blocks {
			_, rcvOff := cb.layout(impl)
			m.Store(cb.descAddr+dFrameWords, word.Int(int64(cb.frameWords)))
			m.Store(cb.descAddr+dNumCounts, word.Int(int64(cb.NumCounts)))
			m.Store(cb.descAddr+dFreeHead, word.Int(0))
			m.Store(cb.descAddr+dRCVOff, word.Int(rcvOff))
			for i, cnt := range cb.InitCounts {
				m.Store(cb.descAddr+dCounts+uint32(4*i), word.Int(cnt))
			}
		}
	}

	cl, err := cluster.New(ms, netcfg)
	if err != nil {
		return nil, err
	}
	cl.Classify = c.RT.classify

	cs = &ClusterSim{
		Impl:       impl,
		Prog:       prog,
		RT:         c.RT,
		C:          cl,
		Nodes:      nodes,
		Collectors: make([]*trace.Collector, nodes),
		Grans:      make([]*stats.Granularity, nodes),
		Obs:        opt.Obs,
	}
	for k := 0; k < nodes; k++ {
		cs.Collectors[k] = &trace.Collector{}
		cs.Grans[k] = &stats.Granularity{Node: k}
	}
	cs.Host = &Host{
		impl: impl, nodes: nodes, placement: c.placement,
		frameShift: frameShift, heapShift: heapShift,
		ms: ms, heapBump: heapBumps,
	}

	// Attach the sink before Setup runs so boot-time message injections
	// are observed.
	if cs.Obs != nil {
		cl.SetSink(cs.Obs)
		for k := 0; k < nodes; k++ {
			cs.Grans[k].Sink = cs.Obs
			if cs.Obs.Events != nil {
				cs.Obs.Events.SetProcessName(int32(k),
					fmt.Sprintf("%s/%s node %d", prog.Name, impl, k))
			}
		}
	}

	if prog.Setup != nil {
		if err := prog.Setup(cs.Host); err != nil {
			return nil, fmt.Errorf("core: %s setup: %w", prog.Name, err)
		}
	}
	if impl.Caps().Scheduler == SchedBackground {
		for _, m := range ms {
			m.Boot(c.RT.schedAddr)
		}
	}
	if impl.Caps().DirectAccess {
		cs.installAAService()
	}
	return cs, nil
}

// nodeTracer returns the reference consumer attached to node k during
// Run: the explicit tracer when the record/replay engine supplied one,
// the node's collector otherwise.
func (cs *ClusterSim) nodeTracer(k int) machine.Tracer {
	if cs.Tracers != nil && cs.Tracers[k] != nil {
		return cs.Tracers[k]
	}
	return cs.Collectors[k]
}

// installAAService wires the Active-Access hook: remote I-structure
// reads and writes are serviced directly against the owning node's
// memory at message-delivery time — the memory footprint of the iread/
// iwrite handlers (traced into the owner's reference stream) without
// dispatching any handler instructions. Frame and heap allocation still
// run as ordinary handlers, and on one node the backend degenerates to
// plain AM (local operations never cross the network).
func (cs *ClusterSim) installAAService() {
	rt := cs.RT
	cs.C.Service = func(tick uint64, m *netsim.Message) (bool, error) {
		if len(m.Words) == 0 {
			return false, nil
		}
		switch m.Words[0].Addr() {
		case rt.ireadAddr, rt.iwriteAddr:
		default:
			return false, nil
		}
		// A locally issued request bypasses the network and dispatches
		// the handler on the owning node, whose read-modify-write of the
		// cell spans many ticks. Servicing a delivery directly while that
		// engine is mid-handler would interleave with it and lose
		// updates, so fall back to ordinary handler injection whenever
		// the node's high-priority engine is busy — both paths implement
		// the same I-structure transition, only atomicity matters.
		if cs.C.Machines[m.Dst].Busy(machine.High) {
			return false, nil
		}
		if m.Words[0].Addr() == rt.ireadAddr {
			return true, cs.aaRead(tick, m)
		}
		return true, cs.aaWrite(tick, m)
	}
}

// aaReply sends an I-structure reply [inlet, frame, value] at the
// requested priority to the node owning the continuation frame.
func (cs *ClusterSim) aaReply(tick uint64, src int, pri, inlet, frame, val word.Word) error {
	dst := int(frame.Addr()>>cs.RT.frameShift) & (cs.RT.nodes - 1)
	ws := []word.Word{inlet, frame, val}
	return cs.C.Net.Send(src, dst, int(pri.AsInt()), ws, tick)
}

// aaRead services an iread request [handler, heapAddr, replyPri,
// replyInlet, replyFrame] against node m.Dst's memory, mirroring
// emitIRead's data accesses: a present cell replies immediately, an
// empty or deferred cell chains the continuation onto the cell's
// deferred-reader list (nodes allocated from the owner's pool).
func (cs *ClusterSim) aaRead(tick uint64, m *netsim.Message) error {
	k := m.Dst
	mm := cs.C.Machines[k].Mem
	trc := cs.nodeTracer(k)
	addr := m.Words[1].Addr()
	trc.Read(addr)
	cell := mm.Load(addr)
	switch cell.Tag {
	case word.TagEmpty, word.TagDefer:
		link := word.Int(0)
		if cell.Tag == word.TagDefer {
			link = cell
			link.Tag = word.TagPtr
		}
		trc.Read(GNodeFree)
		free := mm.Load(GNodeFree)
		var node uint32
		if free.AsInt() != 0 {
			node = free.Addr()
			trc.Read(node + nNext)
			next := mm.Load(node + nNext)
			trc.Write(GNodeFree)
			mm.Store(GNodeFree, next)
		} else {
			trc.Read(GNodeBump)
			node = mm.Load(GNodeBump).Addr()
			trc.Write(GNodeBump)
			mm.Store(GNodeBump, word.Ptr(node+nodeBytes))
		}
		trc.Write(node + nNext)
		mm.Store(node+nNext, link)
		trc.Write(node + nPri)
		mm.Store(node+nPri, m.Words[2])
		trc.Write(node + nInlet)
		mm.Store(node+nInlet, m.Words[3])
		trc.Write(node + nFrame)
		mm.Store(node+nFrame, m.Words[4])
		head := word.Ptr(node)
		head.Tag = word.TagDefer
		trc.Write(addr)
		mm.Store(addr, head)
		return nil
	}
	return cs.aaReply(tick, k, m.Words[2], m.Words[3], m.Words[4], cell)
}

// aaWrite services an iwrite request [handler, heapAddr, value]:
// storing into an empty cell, draining the deferred-reader chain of a
// deferred cell (one reply per waiting continuation, nodes returned to
// the owner's free list), and failing on a double write exactly as the
// handler's trap would.
func (cs *ClusterSim) aaWrite(tick uint64, m *netsim.Message) error {
	k := m.Dst
	mm := cs.C.Machines[k].Mem
	trc := cs.nodeTracer(k)
	addr := m.Words[1].Addr()
	val := m.Words[2]
	trc.Read(addr)
	cell := mm.Load(addr)
	switch cell.Tag {
	case word.TagEmpty:
		trc.Write(addr)
		mm.Store(addr, val)
	case word.TagDefer:
		trc.Write(addr)
		mm.Store(addr, val)
		node := cell.Addr()
		for node != 0 {
			trc.Read(node + nPri)
			pri := mm.Load(node + nPri)
			trc.Read(node + nInlet)
			inlet := mm.Load(node + nInlet)
			trc.Read(node + nFrame)
			frame := mm.Load(node + nFrame)
			if err := cs.aaReply(tick, k, pri, inlet, frame, val); err != nil {
				return err
			}
			trc.Read(node + nNext)
			next := mm.Load(node + nNext)
			trc.Read(GNodeFree)
			free := mm.Load(GNodeFree)
			trc.Write(node + nNext)
			mm.Store(node+nNext, free)
			trc.Write(GNodeFree)
			mm.Store(GNodeFree, word.Ptr(node))
			if next.AsInt() == 0 {
				break
			}
			node = next.Addr()
		}
	default:
		return fmt.Errorf("core: %w: trap %d (aa double write at %#x on node %d)",
			machine.ErrTrap, TrapDoubleWrite, addr, k)
	}
	return nil
}

// BuildCluster compiles prog with the given backend for opt.Nodes mesh
// nodes and prepares a multi-node simulation; Compile followed by
// NewCluster.
func BuildCluster(impl Impl, prog *Program, opt Options) (*ClusterSim, error) {
	c, err := Compile(impl, prog, opt)
	if err != nil {
		return nil, err
	}
	return c.NewCluster(prog, opt)
}

// classify labels an inter-node message by its first payload word (the
// handler or inlet address), attributing mesh traffic to remote
// I-structure requests, frame allocation, or user-level inter-frame
// messages.
func (rt *Runtime) classify(pri int, ws []word.Word) string {
	if len(ws) == 0 {
		return "sys"
	}
	switch a := ws[0].Addr(); a {
	case rt.ireadAddr:
		return "ifetch"
	case rt.iwriteAddr:
		return "iwrite"
	case rt.fallocAddr:
		return "falloc"
	case rt.hallocAddr:
		return "halloc"
	case rt.releaseAddr:
		return "release"
	default:
		if a >= mem.UserCodeBase {
			return "user"
		}
		return "sys"
	}
}

// Run executes the cluster to global quiescence and verifies the result.
func (cs *ClusterSim) Run() error {
	return cs.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation (see Sim.RunContext).
func (cs *ClusterSim) RunContext(ctx context.Context) error {
	if cs.ran {
		return fmt.Errorf("core: %s/%s cluster already ran", cs.Prog.Name, cs.Impl)
	}
	cs.ran = true
	for k, m := range cs.C.Machines {
		if cs.Tracers != nil && cs.Tracers[k] != nil {
			m.SetTracer(cs.Tracers[k])
		} else {
			m.SetTracer(cs.Collectors[k])
		}
		if cs.NICTracers != nil && cs.NICTracers[k] != nil {
			m.SetNICTracer(cs.NICTracers[k])
		}
		m.SetObserver(cs.Grans[k])
	}
	if err := cs.C.RunContext(ctx, cs.MaxTicks); err != nil {
		return fmt.Errorf("core: %s/%s on %d nodes: %w", cs.Prog.Name, cs.Impl, cs.Nodes, err)
	}
	for k, m := range cs.C.Machines {
		cs.Grans[k].TotalInstrs = m.Instructions()
		cs.Grans[k].Finish()
	}
	if cs.Obs != nil {
		cs.finishMetrics()
	}
	if cs.Prog.Verify != nil {
		if err := cs.Prog.Verify(cs.Host); err != nil {
			return fmt.Errorf("core: %s/%s on %d nodes verify: %w",
				cs.Prog.Name, cs.Impl, cs.Nodes, err)
		}
	}
	return nil
}

// Instructions returns the total instruction count across all nodes.
func (cs *ClusterSim) Instructions() uint64 {
	var n uint64
	for _, m := range cs.C.Machines {
		n += m.Instructions()
	}
	return n
}

// Ticks returns the cluster's elapsed lockstep time.
func (cs *ClusterSim) Ticks() uint64 { return cs.C.Tick() }

// MergedGran folds the per-node granularity statistics into one
// aggregate (quanta are per-node thread runs, so counts sum directly).
// The returned value carries no sink.
func (cs *ClusterSim) MergedGran() *stats.Granularity {
	t := &stats.Granularity{}
	for _, g := range cs.Grans {
		t.Threads += g.Threads
		t.Inlets += g.Inlets
		t.Quanta += g.Quanta
		t.Activations += g.Activations
		t.Dispatches[0] += g.Dispatches[0]
		t.Dispatches[1] += g.Dispatches[1]
		t.TotalInstrs += g.TotalInstrs
		t.QuantumHist.Merge(&g.QuantumHist)
		t.QuantumInstrs.Merge(&g.QuantumInstrs)
	}
	return t
}

// finishMetrics folds the run's aggregate statistics into the sink's
// registry, summed across nodes; cluster.FinishMetrics adds the
// per-machine and network totals.
func (cs *ClusterSim) finishMetrics() {
	r := cs.Obs.Metrics
	for _, g := range cs.Grans {
		r.Counter("tam.threads").Add(g.Threads)
		r.Counter("tam.inlets").Add(g.Inlets)
		r.Counter("tam.quanta").Add(g.Quanta)
		r.Counter("tam.activations").Add(g.Activations)
		r.Counter("dispatch.low").Add(g.Dispatches[0])
		r.Counter("dispatch.high").Add(g.Dispatches[1])
		r.Histogram("quantum.threads").Merge(&g.QuantumHist)
		r.Histogram("quantum.instrs").Merge(&g.QuantumInstrs)
	}
	cs.C.FinishMetrics()
	if cs.Tracers == nil {
		for cls := mem.Class(0); cls < mem.NumClasses; cls++ {
			name := cls.String()
			for _, col := range cs.Collectors {
				r.Counter("ref.fetch." + name).Add(col.Fetches[cls])
				r.Counter("ref.read." + name).Add(col.Reads[cls])
				r.Counter("ref.write." + name).Add(col.Writes[cls])
			}
		}
	}
}
