package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantumMerging(t *testing.T) {
	// Threads: A A B A, frames f1 f1 f2 f1 -> quanta: {A,A} {B} {A}.
	var g Granularity
	g.ThreadStart(100, 0)
	g.ThreadStart(100, 0)
	g.ThreadStart(200, 0)
	g.ThreadStart(100, 0)
	g.Finish()
	if g.Threads != 4 {
		t.Errorf("threads = %d, want 4", g.Threads)
	}
	if g.Quanta != 3 {
		t.Errorf("quanta = %d, want 3", g.Quanta)
	}
	if g.MaxQuantum() != 2 {
		t.Errorf("max quantum = %d, want 2", g.MaxQuantum())
	}
	if g.QuantumHist.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", g.QuantumHist.Count())
	}
}

func TestDerivedMetrics(t *testing.T) {
	var g Granularity
	for i := 0; i < 10; i++ {
		g.ThreadStart(uint32(i/5), 0) // two quanta of 5 threads
	}
	g.Finish()
	g.TotalInstrs = 200
	if got := g.TPQ(); got != 5 {
		t.Errorf("TPQ = %g, want 5", got)
	}
	if got := g.IPT(); got != 20 {
		t.Errorf("IPT = %g, want 20", got)
	}
	if got := g.IPQ(); got != 100 {
		t.Errorf("IPQ = %g, want 100", got)
	}
	// IPQ == TPQ * IPT (the relation visible in Table 2).
	if math.Abs(g.IPQ()-g.TPQ()*g.IPT()) > 1e-9 {
		t.Error("IPQ != TPQ*IPT")
	}
}

func TestZeroSafe(t *testing.T) {
	var g Granularity
	g.Finish()
	if g.TPQ() != 0 || g.IPT() != 0 || g.IPQ() != 0 {
		t.Error("zero-activity metrics not zero")
	}
}

func TestObserversCount(t *testing.T) {
	var g Granularity
	g.InletStart(0, 0)
	g.InletStart(0, 0)
	g.Activate(0, 0)
	g.Dispatch(0, 0)
	g.Dispatch(1, 0)
	g.Dispatch(1, 0)
	if g.Inlets != 2 || g.Activations != 1 {
		t.Errorf("inlets=%d activations=%d", g.Inlets, g.Activations)
	}
	if g.Dispatches[0] != 1 || g.Dispatches[1] != 2 {
		t.Errorf("dispatches = %v", g.Dispatches)
	}
}

func TestGeoMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{4}, 4},
		{[]float64{1, 4}, 2},
		{[]float64{2, 2, 2}, 2},
		{[]float64{0, -1}, 0},   // non-positive ignored entirely
		{[]float64{0, 9, 1}, 3}, // zero skipped
	}
	for _, c := range cases {
		if got := GeoMean(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("GeoMean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestGeoMeanProperties(t *testing.T) {
	// The geometric mean of positive values lies between min and max.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Singleton identity.
	id := func(v uint32) bool {
		x := float64(v) + 0.5
		return math.Abs(GeoMean([]float64{x})-x) < 1e-9*x
	}
	if err := quick.Check(id, nil); err != nil {
		t.Error(err)
	}
}
