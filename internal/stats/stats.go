// Package stats derives the paper's granularity metrics from runtime
// events: threads per quantum (TPQ), instructions per thread (IPT) and
// instructions per quantum (IPQ), plus geometric means and MD/AM cycle
// ratios.
//
// Following §3.2, a quantum is a maximal run of consecutively executed
// threads that belong to the same frame; in the MD implementation this
// "can involve emptying the LCV multiple times if subsequent messages are
// destined for the same frame", which the frame-transition rule captures
// for both implementations.
package stats

import (
	"math"

	"jmtam/internal/obs"
)

// Granularity implements machine.Observer, accumulating thread, inlet,
// quantum and activation counts. The zero value is ready to use.
type Granularity struct {
	Threads     uint64
	Inlets      uint64
	Quanta      uint64
	Activations uint64
	Dispatches  [2]uint64

	// TotalInstrs must be set (from Machine.Instructions) when the run
	// completes, before calling the derived-metric methods.
	TotalInstrs uint64

	// QuantumHist distributes quantum sizes in threads; QuantumInstrs
	// distributes quantum lengths in instructions (start of first thread
	// to start of the quantum-ending transition). Both are log2-bucketed
	// obs histograms, the repo's one histogram implementation.
	QuantumHist   obs.Histogram
	QuantumInstrs obs.Histogram

	// Sink, when non-nil before the run, receives one duration event per
	// quantum (Node selects the timeline process, 0 on a uniprocessor).
	Sink *obs.Sink
	Node int

	lastFrame uint32
	haveFrame bool

	// quantum size tracking
	curThreads uint64
	qStart     uint64 // instruction count at the quantum's first thread
	lastInstrs uint64
}

// MaxQuantum returns the thread count of the largest quantum observed.
func (g *Granularity) MaxQuantum() uint64 { return g.QuantumHist.MaxV }

// ThreadStart records entry to a thread body belonging to frame.
func (g *Granularity) ThreadStart(frame uint32, instrs uint64) {
	g.Threads++
	g.lastInstrs = instrs
	if !g.haveFrame || frame != g.lastFrame {
		g.endQuantum(instrs)
		g.Quanta++
		g.lastFrame = frame
		g.haveFrame = true
		g.qStart = instrs
	}
	g.curThreads++
}

func (g *Granularity) endQuantum(now uint64) {
	if g.curThreads == 0 {
		return
	}
	g.QuantumHist.Observe(g.curThreads)
	g.QuantumInstrs.Observe(now - g.qStart)
	if g.Sink != nil && g.Sink.Events != nil {
		g.Sink.Events.DurationArg("quantum", "tam", int32(g.Node), obs.TrackQuanta,
			g.qStart, now-g.qStart, "threads", g.curThreads)
	}
	g.curThreads = 0
}

// InletStart records entry to an inlet.
func (g *Granularity) InletStart(uint32, uint64) { g.Inlets++ }

// Activate records an AM scheduler frame activation.
func (g *Granularity) Activate(uint32, uint64) { g.Activations++ }

// Dispatch records a hardware message dispatch at the given priority.
func (g *Granularity) Dispatch(pri int, _ uint64) {
	if pri == 0 || pri == 1 {
		g.Dispatches[pri]++
	}
}

// Finish closes the trailing quantum; call once after the run, after
// TotalInstrs has been set (the trailing quantum ends at the run's final
// instruction count).
func (g *Granularity) Finish() {
	end := g.TotalInstrs
	if end < g.lastInstrs {
		end = g.lastInstrs
	}
	g.endQuantum(end)
}

// TPQ returns threads per quantum.
func (g *Granularity) TPQ() float64 { return ratio(g.Threads, g.Quanta) }

// IPT returns instructions per thread (all instructions, including
// runtime and inlet instructions, attributed over threads — the
// convention under which Table 2's IPQ ≈ TPQ x IPT).
func (g *Granularity) IPT() float64 { return ratio(g.TotalInstrs, g.Threads) }

// IPQ returns instructions per quantum.
func (g *Granularity) IPQ() float64 { return ratio(g.TotalInstrs, g.Quanta) }

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values
// (which would otherwise poison the logarithm); it returns 0 for an
// empty or all-non-positive input.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
