package jmtam

import (
	"strconv"

	"jmtam/internal/experiments"
	"jmtam/internal/report"
)

// Sweep re-exports the full-evaluation driver: it runs a set of
// workloads under the configured backends (Sweep.Impls, default
// {MD, AM}) across a grid of cache geometries
// and derives the paper's tables and figures. Simulations record their
// reference streams once; the geometry fan-out splits the grid into one
// group per replay worker and drives each group with a vectorized
// single-pass kernel that decodes the trace once for all of the group's
// cache pairs. Set Sweep.Parallelism to bound the worker pool
// (0 = GOMAXPROCS). Results are identical at every setting.
type (
	Sweep    = experiments.Sweep
	Dataset  = experiments.Dataset
	Workload = experiments.Workload
	Series   = experiments.Series
)

// Multi-node comparison re-exports: NodeRatioSweep runs every workload
// under each requested backend (any name in the core registry; nil
// selects {MD, AM}) at each mesh size and aggregates the MD-relative
// cycle and elapsed-lockstep-tick ratios; HopLatencySweep varies
// the mesh's per-hop routing delay at a fixed node count. Set
// Sweep.Options.Nodes to add a nodes axis to the full cache-geometry
// sweep instead (Table 2 at any mesh size).
type (
	NodeRatioRow = experiments.NodeRatioRow
	HopRatioRow  = experiments.HopRatioRow
)

// NodeRatioSweep compares backends across mesh sizes (nil impls
// selects {MD, AM}); see experiments.NodeRatioSweep.
func NodeRatioSweep(ws []Workload, impls []Impl, nodeCounts []int, geom CacheConfig, penalty int, opt Options, parallelism int) ([]NodeRatioRow, error) {
	return experiments.NodeRatioSweep(ws, impls, nodeCounts, geom, penalty, opt, parallelism)
}

// HopLatencySweep compares backends across per-hop routing delays on
// a fixed mesh (nil impls selects {MD, AM}); see
// experiments.HopLatencySweep.
func HopLatencySweep(ws []Workload, impls []Impl, nodes int, perHops []uint64, opt Options, parallelism int) ([]HopRatioRow, error) {
	return experiments.HopLatencySweep(ws, impls, nodes, perHops, opt, parallelism)
}

// ReportNodeRatios renders the node-count comparison table.
func ReportNodeRatios(rows []NodeRatioRow) string { return report.NodeRatios(rows) }

// ReportHopLatency renders the hop-latency comparison table.
func ReportHopLatency(rows []HopRatioRow) string { return report.HopLatency(rows) }

// NewPaperSweep returns the paper's full parameter space (cache sizes
// 1K-128K, associativities 1/2/4, 64-byte blocks, miss penalties
// 12/24/48) over the paper's benchmark arguments. This is the expensive
// configuration; NewQuickSweep preserves the shape at a fraction of the
// cost.
func NewPaperSweep() *Sweep {
	return experiments.DefaultSweep(experiments.PaperWorkloads())
}

// NewQuickSweep returns the same parameter space over reduced benchmark
// sizes.
func NewQuickSweep() *Sweep {
	return experiments.DefaultSweep(experiments.QuickWorkloads())
}

// ReportTable2 renders the dataset's Table 2 (granularity and MD/AM
// cycle ratios at 8K 4-way caches with miss costs 12/24/48).
func ReportTable2(d *Dataset) string {
	return report.Table2(experiments.Table2(d))
}

// ReportAccessRatios renders the §3.1 MD/AM reference-count ratios.
func ReportAccessRatios(d *Dataset) string {
	return report.AccessRatios(experiments.AccessRatios(d))
}

// ReportFigure3 renders the geometric-mean ratio charts (one per miss
// penalty, curves per associativity).
func ReportFigure3(d *Dataset) string {
	var out string
	for _, p := range d.Sweep.Penalties {
		out += report.Chart(figTitle("Figure 3: geomean MD/AM cycle ratio", p), experiments.Figure3(d)[p])
	}
	return out
}

// ReportFigure4 renders per-program ratio charts for 4-way caches.
func ReportFigure4(d *Dataset) string {
	var out string
	for _, p := range d.Sweep.Penalties {
		out += report.Chart(figTitle("Figure 4: per-program ratio, 4-way", p), experiments.Figure4(d)[p])
	}
	return out
}

// ReportFigure5 renders per-program ratio charts for direct-mapped
// caches.
func ReportFigure5(d *Dataset) string {
	var out string
	for _, p := range d.Sweep.Penalties {
		out += report.Chart(figTitle("Figure 5: per-program ratio, direct-mapped", p), experiments.Figure5(d)[p])
	}
	return out
}

// ReportFigure6 renders the direct-mapped geometric means excluding
// selection sort.
func ReportFigure6(d *Dataset) string {
	return report.Chart("Figure 6: direct-mapped geomean excluding SS", experiments.Figure6(d))
}

func figTitle(base string, penalty int) string {
	return base + " (hit=1, miss=" + strconv.Itoa(penalty) + " cycles)"
}
