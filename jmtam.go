// Package jmtam reproduces "Evaluating the Locality Benefits of Active
// Messages" (Spertus & Dally, PPoPP 1995): two implementations of the
// Berkeley Threaded Abstract Machine (TAM) on a simulated J-Machine-like
// message-driven processor, evaluated with a trace-driven cache
// simulator.
//
// The package is a thin façade over the implementation packages:
//
//   - internal/core     — the TAM runtime and its two backends (the
//     Active Messages implementation and the Message-Driven
//     implementation), plus the program-building API
//   - internal/machine  — the MDP-like execution engine
//   - internal/cache    — the cache simulator
//   - internal/programs — the paper's six benchmarks
//   - internal/experiments — Table 2, Figures 3-6 and the ablations
//
// # Quick start
//
//	prog := jmtam.Benchmark("ss", 100)
//	res, err := jmtam.Run(jmtam.MD, prog, jmtam.Options{})
//	fmt.Println(res.Instructions, res.TPQ)
//
// To compare the two implementations across the paper's cache parameter
// space, build a Sweep (see NewPaperSweep) and render its tables and
// figures with the Report* helpers.
package jmtam

import (
	"context"
	"fmt"
	"io"

	"jmtam/internal/cache"
	"jmtam/internal/core"
	"jmtam/internal/experiments"
	"jmtam/internal/machine"
	"jmtam/internal/netsim"
	"jmtam/internal/obs"
	"jmtam/internal/parallel"
	"jmtam/internal/programs"
	"jmtam/internal/report"
	"jmtam/internal/trace"
	"jmtam/internal/word"
)

// Impl selects a TAM backend.
type Impl = core.Impl

// The registered backends: the paper's (unenabled) Active Messages
// implementation, the Message-Driven implementation, the enabled-AM
// uniprocessor variant of §2.4, the Optimistic-Active-Messages-style
// hybrid of §2.4 / [KWW+94], the NIC-offload variant (inlets execute on
// a per-node NIC engine with its own small cache), and the
// Active-Access variant (remote I-structure reads and writes serviced
// directly against the owning node's memory, no inlet dispatch). Use
// core.ParseImpl / core.Backends for name-driven discovery.
const (
	AM        = core.ImplAM
	MD        = core.ImplMD
	AMEnabled = core.ImplAMEnabled
	OAM       = core.ImplOAM
	Offload   = core.ImplOffload
	AA        = core.ImplAA
)

// Re-exported program-building types: a Program is a set of Codeblocks,
// each holding Inlets (message handlers) and Threads whose bodies are
// emitted through the Body macro builder. See examples/custom for a
// complete program written against this API.
type (
	Program   = core.Program
	Codeblock = core.Codeblock
	Inlet     = core.Inlet
	Thread    = core.Thread
	Body      = core.Body
	Host      = core.Host
	Options   = core.Options
	Sim       = core.Sim
)

// CacheConfig describes one cache geometry (size, block, associativity).
type CacheConfig = cache.Config

// Multi-node re-exports: set Options.Nodes to a power of two (at most
// 64) and the six benchmarks run unmodified on an N-node mesh — frames
// are placed across nodes by Options.Placement and remote I-structure
// requests travel the netsim mesh as active messages. Run dispatches
// to the cluster automatically; BuildCluster exposes the cluster
// simulation directly for callers that need per-node access.
type (
	// Placement selects the frame/heap placement policy consulted at
	// falloc/halloc time when Options.Nodes > 1.
	Placement = core.Placement
	// ClusterSim is one ready-to-run multi-node simulation.
	ClusterSim = core.ClusterSim
	// NetConfig describes the mesh (dimensions and latency model);
	// set Options.Net to override the near-square default.
	NetConfig = netsim.Config
)

// The placement policies: round-robin spreads frames across the mesh
// (the default); local keeps every allocation on the requesting node.
const (
	PlaceRoundRobin = core.PlaceRoundRobin
	PlaceLocal      = core.PlaceLocal
)

// ParsePlacement parses a placement policy name ("round-robin", "rr",
// "local") as used by the command-line -placement flags.
func ParsePlacement(s string) (Placement, error) { return core.ParsePlacement(s) }

// DefaultNetConfig returns the near-square mesh configuration used
// when Options.Net is nil.
func DefaultNetConfig(nodes int) NetConfig { return netsim.DefaultConfig(nodes) }

// BuildCluster compiles a program mesh-aware for opt.Nodes nodes and
// returns the ready-to-run cluster simulation.
func BuildCluster(impl Impl, p *Program, opt Options) (*ClusterSim, error) {
	return core.BuildCluster(impl, p, opt)
}

// Observability re-exports: set Options.Obs to a Sink (NewSink) before
// Build/Run and the simulation populates its metrics registry and,
// optionally, a Chrome-trace-event timeline loadable in Perfetto.
// Instrumentation never feeds back into execution — results are
// identical with a sink attached or not.
type (
	Sink        = obs.Sink
	Metrics     = obs.Registry
	EventBuffer = obs.EventBuffer
	Histogram   = obs.Histogram
)

// SinkOption configures a Sink at construction; see NewSink.
type SinkOption = obs.Option

// WithEvents attaches an in-memory timeline event buffer to the sink,
// exportable with EventBuffer.WriteJSON and loadable in Perfetto.
func WithEvents() SinkOption { return obs.WithEvents() }

// WithEventCap bounds the timeline at n events; later events are
// dropped and counted (EventBuffer.Dropped), so paper-scale runs can be
// traced without unbounded buffers.
func WithEventCap(n int) SinkOption { return obs.WithEventCap(n) }

// WithEventWriter streams the timeline to w as events are emitted (the
// same Chrome-trace-event JSON WriteJSON produces, built incrementally
// in bounded memory). Call EventBuffer.Finish after the run to
// terminate the document.
func WithEventWriter(w io.Writer) SinkOption { return obs.WithEventWriter(w) }

// NewSink returns a sink with a metrics registry, configured by the
// given options: NewSink() is metrics-only; add WithEvents,
// WithEventCap or WithEventWriter for a timeline.
func NewSink(opts ...SinkOption) *Sink { return obs.New(opts...) }

// NewSinkWithEvents is the redesigned NewSink's predecessor.
//
// Deprecated: use NewSink with the WithEvents option.
func NewSinkWithEvents(withEvents bool) *Sink { return obs.NewSink(withEvents) }

// RenderMetrics renders a metrics registry as an ASCII report: counters,
// gauges, then histograms as bar charts.
func RenderMetrics(r *Metrics) string { return report.Metrics(r) }

// RenderHistogram renders one log2-bucketed histogram as an ASCII bar
// chart.
func RenderHistogram(title string, h *Histogram) string { return report.Histogram(title, h) }

// Word is the simulated machine's tagged word; Int, Float and Ptr build
// values for start messages and memory pokes.
type Word = word.Word

// Int returns an integer word.
func Int(v int64) Word { return word.Int(v) }

// Float returns a floating-point word.
func Float(v float64) Word { return word.Float(v) }

// Ptr returns an address word.
func Ptr(a uint32) Word { return word.Ptr(a) }

// Build compiles a program with the given backend, returning a
// ready-to-run simulation. Attach cache geometries through
// Sim.Collector.AddPair before calling Sim.Run.
func Build(impl Impl, p *Program, opt Options) (*Sim, error) {
	return core.Build(impl, p, opt)
}

// BuildContext is Build honouring a context: an already-cancelled
// context returns its error without compiling, and the returned Sim's
// RunContext continues the cancellation story into the step loop.
func BuildContext(ctx context.Context, impl Impl, p *Program, opt Options) (*Sim, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.Build(impl, p, opt)
}

// Benchmark returns one of the paper's six benchmarks ("mmt", "qs",
// "dtw", "paraffins", "wavefront", "ss") at the given problem size; a
// size of 0 selects the paper's argument.
func Benchmark(name string, size int) *Program {
	spec, err := programs.ByName(name)
	if err != nil {
		panic(err)
	}
	if size == 0 {
		size = spec.Arg
	}
	return spec.Build(size)
}

// BenchmarkNames lists the six benchmark names in Table 2 order.
func BenchmarkNames() []string {
	var ns []string
	for _, s := range programs.All() {
		ns = append(ns, s.Name)
	}
	return ns
}

// Result summarizes one simulation.
type Result struct {
	Program string
	Impl    Impl
	// Nodes is the mesh size the program ran on (1 = uniprocessor)
	// and Ticks the cluster's elapsed lockstep time (0 on the
	// uniprocessor path). Multi-node counts aggregate over all nodes.
	Nodes        int
	Ticks        uint64
	Instructions uint64
	Reads        uint64
	Writes       uint64
	Threads      uint64
	Quanta       uint64
	TPQ          float64
	IPT          float64
	IPQ          float64
	// Caches reports, for each geometry passed to Run, instruction and
	// data misses and writebacks.
	Caches []experiments.CacheStats
}

// Cycles returns total execution cycles for cache geometry i under the
// given miss penalty (one cycle per instruction plus penalty per miss).
func (r *Result) Cycles(i, penalty int) uint64 {
	c := r.Caches[i]
	return r.Instructions + uint64(penalty)*(c.IMisses+c.DMisses)
}

// Run builds and executes prog under impl with the given cache
// geometries attached, verifying the program's result. The simulation
// records its reference stream once; the geometry fan-out replays the
// recording through each cache pair concurrently (bounded by
// GOMAXPROCS), yielding statistics identical to inline evaluation.
func Run(impl Impl, p *Program, opt Options, geoms ...CacheConfig) (*Result, error) {
	return RunContext(context.Background(), impl, p, opt, geoms...)
}

// RunContext is Run with cooperative cancellation: the simulation polls
// the context every machine.CancelCheckInterval instructions and the
// geometry fan-out checks it between replays, so a cancelled run — even
// one hung mid-benchmark — returns an error wrapping ctx.Err() within
// one check interval.
func RunContext(ctx context.Context, impl Impl, p *Program, opt Options, geoms ...CacheConfig) (*Result, error) {
	// Surface geometry errors before paying for a simulation.
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	if opt.Nodes > 1 {
		return runClusterContext(ctx, impl, p, opt, geoms...)
	}
	sim, err := BuildContext(ctx, impl, p, opt)
	if err != nil {
		return nil, err
	}
	rec := &trace.Recording{}
	sim.Tracer = rec
	if err := sim.RunContext(ctx); err != nil {
		return nil, err
	}
	res := &Result{
		Program:      p.Name,
		Impl:         impl,
		Nodes:        1,
		Instructions: sim.M.Instructions(),
		Reads:        rec.TotalReads(),
		Writes:       rec.TotalWrites(),
		Threads:      sim.Gran.Threads,
		Quanta:       sim.Gran.Quanta,
		TPQ:          sim.Gran.TPQ(),
		IPT:          sim.Gran.IPT(),
		IPQ:          sim.Gran.IPQ(),
		Caches:       make([]experiments.CacheStats, len(geoms)),
	}
	err = parallel.ForEachContext(ctx, 0, len(geoms), func(i int) error {
		pr, err := rec.ReplayPair(geoms[i])
		if err != nil {
			return err
		}
		res.Caches[i] = experiments.CacheStats{
			Config:     pr.I.Config(),
			IMisses:    pr.I.Stats().Misses,
			DMisses:    pr.D.Stats().Misses,
			Writebacks: pr.D.Stats().Writebacks,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runClusterContext is RunContext's multi-node path: the program runs
// on an opt.Nodes mesh with one reference recording per node, and the
// geometry fan-out replays every node through its own private cache
// pair (a mesh node owns its caches), summing the misses per geometry.
func runClusterContext(ctx context.Context, impl Impl, p *Program, opt Options, geoms ...CacheConfig) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cs, err := core.BuildCluster(impl, p, opt)
	if err != nil {
		return nil, err
	}
	recs := make([]*trace.Recording, cs.Nodes)
	cs.Tracers = make([]machine.Tracer, cs.Nodes)
	for k := range recs {
		recs[k] = &trace.Recording{}
		cs.Tracers[k] = recs[k]
	}
	if err := cs.RunContext(ctx); err != nil {
		return nil, err
	}
	g := cs.MergedGran()
	res := &Result{
		Program:      p.Name,
		Impl:         impl,
		Nodes:        cs.Nodes,
		Ticks:        cs.Ticks(),
		Instructions: cs.Instructions(),
		Threads:      g.Threads,
		Quanta:       g.Quanta,
		TPQ:          g.TPQ(),
		IPT:          g.IPT(),
		IPQ:          g.IPQ(),
		Caches:       make([]experiments.CacheStats, len(geoms)),
	}
	for _, rec := range recs {
		res.Reads += rec.TotalReads()
		res.Writes += rec.TotalWrites()
	}
	err = parallel.ForEachContext(ctx, 0, len(geoms), func(i int) error {
		st := experiments.CacheStats{Config: geoms[i]}
		for _, rec := range recs {
			pr, err := trace.NewPair(geoms[i])
			if err != nil {
				return err
			}
			rec.Replay(pr)
			st.Config = pr.I.Config()
			st.IMisses += pr.I.Stats().Misses
			st.DMisses += pr.D.Stats().Misses
			st.Writebacks += pr.D.Stats().Writebacks
		}
		res.Caches[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CompareAt runs prog under both implementations with a single cache
// geometry and returns the MD/AM total-cycle ratio at the given miss
// penalty — the paper's headline metric.
func CompareAt(p func() *Program, geom CacheConfig, penalty int, opt Options) (float64, error) {
	md, err := Run(MD, p(), opt, geom)
	if err != nil {
		return 0, err
	}
	am, err := Run(AM, p(), opt, geom)
	if err != nil {
		return 0, err
	}
	amc := am.Cycles(0, penalty)
	if amc == 0 {
		return 0, fmt.Errorf("jmtam: zero cycle count")
	}
	return float64(md.Cycles(0, penalty)) / float64(amc), nil
}
